package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ArenaLeak is the compile-time companion of the runtime leak check in
// tensor/pool.go (Arena.Outstanding): a buffer checked out of an
// arena-like pool (any type with both Get and Put methods — tensor.Arena,
// sync.Pool) must be released, handed to an owner, or escape the
// function. Two shapes are flagged:
//
//   - a checkout whose result is only ever read locally and never
//     released, handed off, or escaped — the buffer silently leaks from
//     the pool's accounting;
//   - a return statement between a checkout and its (positional)
//     release — the early-return path skips the Put.
//
// Ownership transfer is resolved interprocedurally: passing the buffer
// to an in-package function discharges the obligation only if that
// function's parameter is itself released or escapes (a fixpoint over
// the call graph); passing it to an opaque callee, returning it, or
// storing it anywhere is conservatively treated as a hand-off, keeping
// the checker on the no-false-positive side.
type ArenaLeak struct{}

// Name implements Checker.
func (ArenaLeak) Name() string { return "arena-leak" }

// Doc implements Checker.
func (ArenaLeak) Doc() string {
	return "buffer from an arena Get must be released, handed off, or escape on every path"
}

// useRole classifies what one occurrence of a checked-out buffer does
// with the value.
type useRole int

const (
	// roleRead is a pure read (indexing, field access, method receiver):
	// it does not discharge the release obligation.
	roleRead useRole = iota
	// roleRelease is Put(buf) or Reuse(buf, ...) on an arena-like receiver.
	roleRelease
	// roleEscape covers returns, stores, channel sends, address-taking,
	// composite literals, and closure captures: ownership leaves the
	// local analysis, so the obligation is conservatively discharged.
	roleEscape
	// roleExternalHandoff is an argument of an opaque call (external
	// function, literal, unresolved): assume the callee takes ownership.
	roleExternalHandoff
	// roleInternalHandoff is an argument of an in-package call: the
	// obligation is discharged only if the callee handles that parameter.
	roleInternalHandoff
)

// useClass is the classification of one occurrence.
type useClass struct {
	role     useRole
	deferred bool          // release inside a defer statement
	callees  []*types.Func // resolved in-package callees for roleInternalHandoff
	argIdx   int           // argument index for roleInternalHandoff
}

// Run implements Checker.
func (ArenaLeak) Run(p *Pass) []Finding {
	g := p.CallGraph()
	handled := handledParams(p, g)
	var out []Finding
	for _, fi := range p.FuncInfos() {
		parents := parentMap(fi.Decl)
		ast.Inspect(fi.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, isArena := arenaCallName(p, call)
			if !isArena || name == "Put" {
				return true
			}
			// Get or Reuse: a checkout. How is the result consumed?
			home := g.NodeAt(call.Pos())
			if home == nil {
				return true
			}
			parent := parents[call]
			for {
				if pe, ok := parent.(*ast.ParenExpr); ok {
					parent = parents[pe]
					continue
				}
				break
			}
			switch pa := parent.(type) {
			case *ast.ExprStmt:
				out = append(out, p.rangeFinding("arena-leak", call.Pos(), call.End(),
					"result of arena %s is discarded; the checked-out buffer can never be released", name))
			case *ast.AssignStmt:
				var lhs ast.Expr
				for i, r := range pa.Rhs {
					if len(pa.Lhs) == len(pa.Rhs) && ast.Unparen(r) == call {
						lhs = pa.Lhs[i]
					}
				}
				id, okID := lhs.(*ast.Ident)
				if !okID {
					return true // stored into a field or index: escapes
				}
				v := fi.localVarOfDef(id)
				if v == nil {
					return true
				}
				out = append(out, checkCheckout(p, g, fi, parents, handled, call, v, home, name)...)
			}
			return true
		})
	}
	return out
}

// checkCheckout analyses the lifetime of one tracked checkout.
func checkCheckout(p *Pass, g *CallGraph, fi *FuncInfo, parents map[ast.Node]ast.Node, handled map[*types.Func][]bool, call *ast.CallExpr, v *types.Var, home *CGNode, name string) []Finding {
	discharged, deferredRelease := false, false
	minDischarge := token.Pos(1 << 40)
	for _, id := range fi.Uses[v] {
		if id.Pos() <= call.End() {
			continue // earlier lifetime of a reused variable
		}
		u := classifyArenaUse(p, g, parents, id, home)
		ok := false
		switch u.role {
		case roleRelease:
			ok = true
			if u.deferred {
				deferredRelease = true
			}
		case roleEscape, roleExternalHandoff:
			ok = true
		case roleInternalHandoff:
			for _, c := range u.callees {
				if paramIsHandled(handled[c], u.argIdx) {
					ok = true
					break
				}
			}
		}
		if ok {
			discharged = true
			if id.Pos() < minDischarge {
				minDischarge = id.Pos()
			}
		}
	}
	if !discharged {
		return []Finding{p.rangeFinding("arena-leak", call.Pos(), call.End(),
			"arena buffer %s is never released, handed off, or returned; it leaks from the pool", v.Name())}
	}
	if deferredRelease {
		return nil // defer covers every return path
	}
	// The discharge is positional: any return between the checkout and
	// the first discharging use skips it.
	var out []Finding
	getLine := p.Fset.Position(call.Pos()).Line
	inspectOwn(home.Body(), func(x ast.Node) {
		ret, ok := x.(*ast.ReturnStmt)
		if !ok {
			return
		}
		if ret.Pos() > call.End() && ret.End() < minDischarge {
			out = append(out, p.rangeFinding("arena-leak", ret.Pos(), ret.End(),
				"returning here leaks arena buffer %s checked out at line %d; release it first or use a deferred Put/Scope", v.Name(), getLine))
		}
	})
	return out
}

// classifyArenaUse decides what one occurrence of the buffer does,
// from its syntactic context. home is the call-graph node that owns the
// checkout: an occurrence in a different node is a closure capture.
func classifyArenaUse(p *Pass, g *CallGraph, parents map[ast.Node]ast.Node, id *ast.Ident, home *CGNode) useClass {
	u := useClass{role: roleRead, argIdx: -1}
	if n := g.NodeAt(id.Pos()); n != home {
		u.role = roleEscape // captured by a nested literal
		return u
	}
	var e ast.Node = id
	for {
		if pe, ok := parents[e].(*ast.ParenExpr); ok {
			e = pe
			continue
		}
		break
	}
	switch parent := parents[e].(type) {
	case *ast.CallExpr:
		if parent.Fun == e {
			return u // calling the value itself
		}
		idx := -1
		for i, a := range parent.Args {
			if a == e {
				idx = i
				break
			}
		}
		if idx < 0 {
			return u
		}
		if name, ok := arenaCallName(p, parent); ok && (name == "Put" || name == "Reuse") && idx == 0 {
			u.role = roleRelease
			if _, isDefer := parents[parent].(*ast.DeferStmt); isDefer {
				u.deferred = true
			}
			return u
		}
		edges := g.SiteEdges(parent)
		if len(edges) == 0 {
			// Builtin or conversion: append aliases the value, the rest
			// (copy, len, cap) only read it.
			if fid, ok := ast.Unparen(parent.Fun).(*ast.Ident); ok {
				if _, isBuiltin := p.Info.Uses[fid].(*types.Builtin); isBuiltin {
					if fid.Name == "append" {
						u.role = roleEscape
					}
					return u
				}
			}
			u.role = roleEscape // conversion or other opaque form
			return u
		}
		for _, ed := range edges {
			if ed.Target == nil || ed.Target.Fn == nil {
				u.role = roleExternalHandoff
				return u
			}
			u.callees = append(u.callees, ed.Callee)
		}
		u.role = roleInternalHandoff
		u.argIdx = idx
		return u
	case *ast.SelectorExpr:
		return u // t.Data, t.Method(...): read
	case *ast.IndexExpr, *ast.SliceExpr, *ast.BinaryExpr, *ast.StarExpr,
		*ast.IfStmt, *ast.SwitchStmt, *ast.ForStmt, *ast.RangeStmt, *ast.ExprStmt:
		return u
	default:
		// ReturnStmt, AssignStmt RHS, SendStmt, UnaryExpr (&), composite
		// literals, and anything unanticipated: conservatively an escape.
		u.role = roleEscape
		return u
	}
}

// handledParams computes, for every in-package function, which
// parameters discharge an arena obligation when a buffer is passed in:
// the parameter is released, escapes, or is forwarded to another
// handled parameter (least fixpoint over the call graph).
func handledParams(p *Pass, g *CallGraph) map[*types.Func][]bool {
	type dep struct {
		fn        *types.Func
		idx       int
		callees   []*types.Func
		calleeIdx int
	}
	handled := map[*types.Func][]bool{}
	var deps []dep
	for _, fi := range p.FuncInfos() {
		node := g.NodeOf(fi.Decl)
		if node == nil || node.Fn == nil {
			continue
		}
		params := paramVarsOf(p, fi.Decl)
		flags := make([]bool, len(params))
		parents := parentMap(fi.Decl)
		for i, pv := range params {
			if pv == nil {
				continue
			}
			for _, id := range fi.Uses[pv] {
				u := classifyArenaUse(p, g, parents, id, node)
				switch u.role {
				case roleRelease, roleEscape, roleExternalHandoff:
					flags[i] = true
				case roleInternalHandoff:
					deps = append(deps, dep{node.Fn, i, u.callees, u.argIdx})
				}
			}
		}
		handled[node.Fn] = flags
	}
	for changed := true; changed; {
		changed = false
		for _, d := range deps {
			if handled[d.fn][d.idx] {
				continue
			}
			for _, c := range d.callees {
				if paramIsHandled(handled[c], d.calleeIdx) {
					handled[d.fn][d.idx] = true
					changed = true
					break
				}
			}
		}
	}
	return handled
}

// paramIsHandled consults a handled-flags slice, clamping the index for
// variadic tails.
func paramIsHandled(flags []bool, idx int) bool {
	if len(flags) == 0 || idx < 0 {
		return false
	}
	if idx >= len(flags) {
		idx = len(flags) - 1
	}
	return flags[idx]
}

// paramVarsOf returns the parameter objects of a declaration in
// positional order (nil for unnamed parameters).
func paramVarsOf(p *Pass, decl *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if decl.Type.Params == nil {
		return out
	}
	for _, fld := range decl.Type.Params.List {
		if len(fld.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range fld.Names {
			v, _ := p.Info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

// arenaCallName reports calls of Get, Put, or Reuse on an arena-like
// receiver (a type with both Get and Put methods).
func arenaCallName(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Get" && name != "Put" && name != "Reuse" {
		return "", false
	}
	s, ok := p.Info.Selections[sel]
	if !ok {
		return "", false
	}
	if !isArenaLike(s.Recv()) {
		return "", false
	}
	return name, true
}

// isArenaLike reports whether t is a pool type with a Get/Put checkout
// discipline. tensor.Arena and sync.Pool qualify; tensor.Scope does not
// (Get/Release — its Release already returns everything).
func isArenaLike(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return hasMethod(t, "Get") && hasMethod(t, "Put")
}

// hasMethod reports whether t (or *t) has a method with the given name.
func hasMethod(t types.Type, name string) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}
