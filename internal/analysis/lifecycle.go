package analysis

// Goroutine lifecycle analysis: the second half of the concurrency
// layer. Where lockset.go answers "what is held?", this file answers
// "does this goroutine ever finish, and can its join deadlock?". Two
// checkers share the machinery: GoroutineLifecycle proves a launched
// body can block forever (a for/select daemon with no termination
// case, or a send/receive on a spawner-local unbuffered channel with
// no counterpart anywhere in the package), and WaitGroupMisuse pins
// the three WaitGroup protocols the serve/experiments fan-outs rely
// on — Add before launch, Done on every exit path, Wait not under a
// lock the workers need.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLifecycle flags goroutine launches whose body can block
// forever — a leak at best (the goroutine and everything it captures
// never die) and a shutdown hang at worst. Two proofs are attempted:
//
//  1. The body runs `for { select { ... } }` where no clause can
//     terminate it: no ctx.Done()/stop-channel receive, no return or
//     break, no default. Such a daemon outlives every request and
//     server shutdown.
//  2. The body sends on or receives from an unbuffered channel local
//     to the spawner, and no counterpart operation (receive/range for
//     a send; send/close for a receive) exists anywhere in the
//     package outside the goroutine itself. The channel cannot escape
//     (locals only, no call arguments), so no counterpart can exist
//     at runtime either: the goroutine parks on the channel forever.
type GoroutineLifecycle struct{}

// Name implements Checker.
func (GoroutineLifecycle) Name() string { return "goroutine-lifecycle" }

// Doc implements Checker.
func (GoroutineLifecycle) Doc() string {
	return "launched goroutine must have a termination path: no for/select daemons without a stop case, no channel ops with no counterpart"
}

// Run implements Checker.
func (c GoroutineLifecycle) Run(p *Pass) []Finding {
	g := p.CallGraph()
	var out []Finding
	flagged := map[token.Pos]bool{}
	flag := func(l Launch, format string, args ...any) {
		if flagged[l.Go.Pos()] {
			return
		}
		flagged[l.Go.Pos()] = true
		out = append(out, p.rangeFinding(c.Name(), l.Go.Pos(), l.Go.Call.End(), format, args...))
	}
	for _, l := range g.Launches {
		for _, e := range g.SiteEdges(l.Go.Call) {
			if e.Target == nil {
				continue
			}
			body := e.Target.Body()
			if loop := endlessSelectLoop(p, body); loop != nil {
				flag(l, "goroutine runs a for/select loop with no termination case (no ctx.Done(), stop channel, return, or break): it can never exit; add a done case")
				continue
			}
			if op, ch := orphanedChanOp(p, g, e.Target, l); op != "" {
				flag(l, "goroutine blocks forever: it %s unbuffered channel %s and no %s exists anywhere; the goroutine (and all it captures) leaks",
					op, ch, counterpartName(op))
			}
		}
	}
	return out
}

// endlessSelectLoop finds a `for { select { ... } }` in the body (own
// statements only) where no select clause can end the loop: every
// clause lacks return/break, none receives from ctx.Done() or a
// struct{} stop channel, and there is no default (a default busy-loop
// is at least observable; the blocking daemon is the silent leak).
func endlessSelectLoop(p *Pass, body *ast.BlockStmt) *ast.ForStmt {
	var found *ast.ForStmt
	inspectOwn(body, func(x ast.Node) {
		loop, ok := x.(*ast.ForStmt)
		if !ok || loop.Cond != nil || found != nil {
			return
		}
		ast.Inspect(loop.Body, func(y ast.Node) bool {
			if _, isLit := y.(*ast.FuncLit); isLit {
				return false
			}
			sel, ok := y.(*ast.SelectStmt)
			if !ok {
				return true
			}
			escapable := false
			for _, cl := range sel.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil || isStopCase(p, cc.Comm) || clauseExits(cc) {
					escapable = true
					break
				}
			}
			if !escapable {
				found = loop
			}
			return false
		})
	})
	return found
}

// isStopCase reports whether a select comm statement is the shutdown
// idiom: a receive from ctx.Done() (any method named Done returning a
// channel) or from a channel of struct{} element type (the stop/quit
// channel convention).
func isStopCase(p *Pass, comm ast.Stmt) bool {
	var recv ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		recv = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv = s.Rhs[0]
		}
	}
	un, ok := ast.Unparen(recv).(*ast.UnaryExpr)
	if !ok || un.Op != token.ARROW {
		return false
	}
	src := ast.Unparen(un.X)
	if call, ok := src.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	}
	if srcT := p.Info.TypeOf(src); srcT != nil {
		if t, ok := srcT.Underlying().(*types.Chan); ok {
			if st, ok := t.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	return false
}

// clauseExits reports whether a comm clause body contains a return or
// break — any possible way out of the enclosing loop.
func clauseExits(cc *ast.CommClause) bool {
	exits := false
	for _, st := range cc.Body {
		ast.Inspect(st, func(y ast.Node) bool {
			switch b := y.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				exits = true
			case *ast.BranchStmt:
				if b.Tok == token.BREAK || b.Tok == token.GOTO {
					exits = true
				}
			}
			return !exits
		})
	}
	return exits
}

// orphanedChanOp looks for a blocking channel operation in the
// goroutine body on a spawner-local unbuffered channel that has no
// counterpart operation anywhere else in the package. Returns the
// operation ("sends on" / "receives from") and the channel's source
// spelling, or "".
func orphanedChanOp(p *Pass, g *CallGraph, target *CGNode, l Launch) (op, ch string) {
	fi := p.FuncInfoAt(l.Go.Pos())
	if fi == nil {
		return "", ""
	}
	check := func(id *ast.Ident, send bool) bool {
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || !fi.isLocal(v) || !unbufferedChanVar(p, fi, v) || chanEscapes(p, fi, v, l) {
			return false
		}
		return !hasCounterpart(p, g, target, v, send)
	}
	inspectOwn(target.Body(), func(x ast.Node) {
		if op != "" {
			return
		}
		switch s := x.(type) {
		case *ast.SendStmt:
			if id, ok := ast.Unparen(s.Chan).(*ast.Ident); ok && check(id, true) {
				op, ch = "sends on", id.Name
			}
		case *ast.UnaryExpr:
			if s.Op != token.ARROW {
				return
			}
			if id, ok := ast.Unparen(s.X).(*ast.Ident); ok && check(id, false) {
				op, ch = "receives from", id.Name
			}
		}
	})
	return op, ch
}

// counterpartName names the missing half for the finding message.
func counterpartName(op string) string {
	if op == "sends on" {
		return "receive"
	}
	return "send or close"
}

// unbufferedChanVar reports whether every definition of v is an
// unbuffered make(chan T) — a rendezvous channel, where each op blocks
// until its counterpart arrives.
func unbufferedChanVar(p *Pass, fi *FuncInfo, v *types.Var) bool {
	defs := fi.Defs[v]
	if len(defs) == 0 {
		return false
	}
	for _, d := range defs {
		call, ok := ast.Unparen(d.RHS).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return false
		}
		if _, isChan := p.Info.TypeOf(call.Args[0]).Underlying().(*types.Chan); !isChan {
			return false
		}
	}
	return true
}

// chanEscapes reports whether the channel variable leaves the spawner's
// static view: passed as a call argument (other than close/len/cap and
// the launch itself — even an in-package callee sees it only as a
// parameter the counterpart scan cannot unify), returned, or assigned
// to anything that is not a plain local. Once it escapes, a
// counterpart may exist where the analysis cannot see it.
func chanEscapes(p *Pass, fi *FuncInfo, v *types.Var, l Launch) bool {
	escapes := false
	parents := parentMap(fi.Decl)
	for _, id := range fi.Uses[v] {
		switch par := parents[id].(type) {
		case *ast.CallExpr:
			if par == l.Go.Call {
				continue // the launch's own argument list
			}
			if fn, ok := par.Fun.(*ast.Ident); ok {
				switch fn.Name {
				case "close", "len", "cap":
					continue
				}
			}
			escapes = true
		case *ast.ReturnStmt:
			escapes = true
		case *ast.AssignStmt:
			for i, lhs := range par.Lhs {
				if i < len(par.Rhs) && par.Rhs[i] == id {
					if _, isIdent := ast.Unparen(lhs).(*ast.Ident); !isIdent {
						escapes = true // stored into a field/map/slice
					}
				}
			}
		case *ast.KeyValueExpr, *ast.CompositeLit:
			escapes = true
		}
	}
	return escapes
}

// hasCounterpart scans every node of the package except the goroutine
// body itself for the operation that would unblock it: for a send, a
// receive or range over the channel; for a receive, a send or close.
func hasCounterpart(p *Pass, g *CallGraph, exclude *CGNode, v *types.Var, send bool) bool {
	usesVar := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && p.Info.Uses[id] == v
	}
	found := false
	for _, n := range g.Nodes {
		if n == exclude || found {
			continue
		}
		inspectOwn(n.Body(), func(x ast.Node) {
			if found {
				return
			}
			switch s := x.(type) {
			case *ast.SendStmt:
				if !send && usesVar(s.Chan) {
					found = true
				}
			case *ast.UnaryExpr:
				if send && s.Op == token.ARROW && usesVar(s.X) {
					found = true
				}
			case *ast.RangeStmt:
				if send && usesVar(s.X) {
					found = true
				}
			case *ast.CallExpr:
				if !send {
					if fn, ok := s.Fun.(*ast.Ident); ok && fn.Name == "close" && len(s.Args) == 1 && usesVar(s.Args[0]) {
						found = true
					}
				}
			}
		})
	}
	return found
}

// WaitGroupMisuse flags the three WaitGroup protocol violations that
// turn a fan-out join into a hang or a panic:
//
//  1. Add called inside the launched goroutine: the spawner's Wait can
//     run before the goroutine is scheduled, see counter zero, and
//     return while work is still in flight. Add must happen before the
//     go statement, on the spawner's side of the happens-before edge.
//  2. Done not deferred while an earlier return or a call that can
//     panic may exit the function first: the counter never reaches
//     zero and Wait blocks forever.
//  3. Wait called while holding a lock that the Done-side goroutines
//     also acquire: the waiter holds the lock the workers need to
//     finish — a deadlock the race detector cannot see.
type WaitGroupMisuse struct{}

// Name implements Checker.
func (WaitGroupMisuse) Name() string { return "waitgroup-misuse" }

// Doc implements Checker.
func (WaitGroupMisuse) Doc() string {
	return "WaitGroup protocol: Add before launch, Done deferred on every path, Wait not under a lock the workers take"
}

// wgOp is one WaitGroup method call.
type wgOp struct {
	call     *ast.CallExpr
	name     string // Add, Done, Wait
	key      string // lock-style canonical identity of the receiver
	display  string
	node     *CGNode
	deferred bool
}

// Run implements Checker.
func (c WaitGroupMisuse) Run(p *Pass) []Finding {
	g := p.CallGraph()
	lf := p.LockFacts()

	ops := collectWgOps(p, g)
	if len(ops) == 0 {
		return nil
	}
	waitKeys := map[string]bool{}
	doneByNode := map[*CGNode]map[string]bool{}
	for _, op := range ops {
		if op.name == "Wait" {
			waitKeys[op.key] = true
		}
		if op.name == "Done" {
			if doneByNode[op.node] == nil {
				doneByNode[op.node] = map[string]bool{}
			}
			doneByNode[op.node][op.key] = true
		}
	}

	// mayPanic: bottom-up "reaches a direct panic() call".
	mayPanic := g.Propagate(func(n *CGNode) bool {
		has := false
		inspectOwn(n.Body(), func(x ast.Node) {
			if call, ok := x.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
						has = true
					}
				}
			}
		})
		return has
	})

	var out []Finding
	for _, op := range ops {
		switch op.name {
		case "Add":
			if lf.Launched(op.node) && waitKeys[op.key] {
				out = append(out, p.rangeFinding(c.Name(), op.call.Pos(), op.call.End(),
					"%s.Add runs inside the launched goroutine: Wait can observe the counter before the goroutine is scheduled and return early; call Add before the go statement", op.display))
			}
		case "Done":
			if op.deferred || !waitKeys[op.key] {
				continue
			}
			if why := skippablePathBefore(p, g, op, mayPanic); why != "" {
				out = append(out, p.rangeFinding(c.Name(), op.call.Pos(), op.call.End(),
					"%s.Done is not deferred and %s can exit the function first, leaving the counter high and Wait blocked forever; use defer %s.Done()", op.display, why, op.display))
			}
		case "Wait":
			held := lf.HeldAt(op.node, op.call.Pos())
			if len(held) == 0 {
				continue
			}
			for _, m := range g.Nodes {
				if !lf.Launched(m) {
					continue
				}
				if !reachesDone(g, doneByNode, m, op.key) {
					continue
				}
				conflict := ""
				for _, k := range sortedKeys(held) {
					if lf.Acquired(m)[k] {
						conflict = k
						break
					}
				}
				if conflict == "" {
					continue
				}
				out = append(out, p.rangeFinding(c.Name(), op.call.Pos(), op.call.End(),
					"%s.Wait is called with %s held, and goroutine %s calling %s.Done acquires the same lock: the waiter blocks the workers it waits for; release the lock before Wait",
					op.display, lf.Display(conflict), g.NodeName(m), op.display))
				break
			}
		}
	}
	return out
}

// collectWgOps finds every WaitGroup Add/Done/Wait call per node.
func collectWgOps(p *Pass, g *CallGraph) []wgOp {
	var ops []wgOp
	for _, n := range g.Nodes {
		deferred := map[*ast.CallExpr]bool{}
		inspectOwn(n.Body(), func(x ast.Node) {
			if d, ok := x.(*ast.DeferStmt); ok {
				deferred[d.Call] = true
			}
		})
		inspectOwn(n.Body(), func(x ast.Node) {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			switch sel.Sel.Name {
			case "Add", "Done", "Wait":
			default:
				return
			}
			s, ok := p.Info.Selections[sel]
			if !ok || !isWaitGroup(s.Recv()) {
				return
			}
			key, display := lockKeyOf(p, sel.X)
			ops = append(ops, wgOp{
				call: call, name: sel.Sel.Name, key: "wg/" + key,
				display: display, node: n, deferred: deferred[call],
			})
		})
	}
	return ops
}

// skippablePathBefore explains how control can leave op.node before a
// non-deferred Done executes: an earlier return statement, or an
// earlier call into a function that can panic. Returns "" when no such
// path is visible.
func skippablePathBefore(p *Pass, g *CallGraph, op wgOp, mayPanic map[*CGNode]bool) string {
	why := ""
	inspectOwn(op.node.Body(), func(x ast.Node) {
		if why != "" {
			return
		}
		if r, ok := x.(*ast.ReturnStmt); ok && r.Pos() < op.call.Pos() {
			why = "an earlier return"
		}
	})
	if why != "" {
		return why
	}
	for _, e := range g.EdgesFrom(op.node) {
		if e.Site.Pos() >= op.call.Pos() || e.Target == nil || !mayPanic[e.Target] {
			continue
		}
		callee := g.NodeName(e.Target)
		if e.Callee != nil {
			callee = g.FuncName(e.Callee)
		}
		return "an earlier call to " + callee + " (which can panic)"
	}
	return ""
}

// reachesDone reports whether launched node m, or anything it reaches
// through non-launch edges, calls Done on the given WaitGroup key.
func reachesDone(g *CallGraph, doneByNode map[*CGNode]map[string]bool, m *CGNode, key string) bool {
	seen := map[*CGNode]bool{m: true}
	work := []*CGNode{m}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if doneByNode[n][key] {
			return true
		}
		for _, e := range g.EdgesFrom(n) {
			if e.Target != nil && !seen[e.Target] {
				seen[e.Target] = true
				work = append(work, e.Target)
			}
		}
	}
	return false
}
