package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags values ranged from a map that flow into an
// order-sensitive sink — an append, a float/string accumulator, an
// output write, or a channel send — with no intervening sort. Go
// randomizes map iteration order on purpose, so any of these leaks
// nondeterminism straight into the paper's tables: report rows swap,
// CSV lines shuffle, float sums differ in the last bits between runs of
// the same seed. The dataflow engine tracks where the ranged key/value
// actually flows, so the standard collect-keys-then-sort idiom (as in
// experiments.IDs) is recognized and left alone.
type MapOrder struct{}

func (MapOrder) Name() string { return "map-order" }
func (MapOrder) Doc() string {
	return "flags map-ranged values flowing into appends/writes/accumulators without a sort"
}

func (c MapOrder) Run(p *Pass) []Finding {
	var out []Finding
	for _, fi := range p.FuncInfos() {
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(p.Info.TypeOf(rs.X)) {
				return true
			}
			out = append(out, c.checkMapRange(fi, rs)...)
			return true
		})
	}
	return out
}

// checkMapRange inspects one map-range loop body for order-sensitive
// sinks of the ranged key/value.
func (c MapOrder) checkMapRange(fi *FuncInfo, rs *ast.RangeStmt) []Finding {
	p := fi.Pass
	ranged := map[*types.Var]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := fi.localVarOfDef(id); obj != nil {
				ranged[obj] = true
			}
		}
	}
	if len(ranged) == 0 {
		return nil
	}
	fromRanged := func(e ast.Expr) bool {
		return fi.FlowsFrom(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return false
			}
			obj, ok := p.Info.Uses[id].(*types.Var)
			return ok && ranged[obj]
		})
	}

	var out []Finding
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if isBuiltinAppend(p.Info, s) {
				for _, arg := range s.Args[1:] {
					if !fromRanged(arg) {
						continue
					}
					if target := fi.LocalVar(s.Args[0]); target != nil && fi.sortedAfter(target, rs.Pos()) {
						break // collect-then-sort idiom
					}
					out = append(out, p.finding(c.Name(), s.Pos(),
						"append of map-ranged value inside map iteration; order is random per run — collect keys, sort them, then iterate (or sort the slice before use)"))
					break
				}
				return true
			}
			if name, isWrite := writeCallName(p, s); isWrite {
				for _, arg := range s.Args {
					if fromRanged(arg) {
						out = append(out, p.finding(c.Name(), s.Pos(),
							"%s emits a map-ranged value in iteration order; output differs between same-seed runs — sort the keys first", name))
						break
					}
				}
			}
		case *ast.AssignStmt:
			if accum, lhs := isAccumulation(p, s); accum && fromRanged(s.Rhs[0]) && orderSensitiveType(p.Info.TypeOf(lhs)) {
				out = append(out, p.finding(c.Name(), s.Pos(),
					"accumulation of map-ranged value; float/string accumulation order changes the result bits — sort the keys first"))
			}
		case *ast.SendStmt:
			if fromRanged(s.Value) {
				out = append(out, p.finding(c.Name(), s.Pos(),
					"send of map-ranged value; the receiver observes random map order — sort the keys first"))
			}
		}
		return true
	})
	return out
}

// sortedAfter reports whether v is passed to a sort/slices ordering
// call at or after pos in the same function — the collect-then-sort
// idiom that makes a map-range append deterministic.
func (fi *FuncInfo) sortedAfter(v *types.Var, pos token.Pos) bool {
	found := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		pkg, _, ok := qualifiedCall(fi.Pass.Info, call)
		if !ok || (pkg != "sort" && pkg != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if fi.LocalVar(arg) == v {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

// isAccumulation reports whether s updates its LHS from its previous
// value: a compound op-assignment, or x = x <op> y.
func isAccumulation(p *Pass, s *ast.AssignStmt) (bool, ast.Expr) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true, s.Lhs[0]
	case token.ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false, nil
		}
		id, ok := s.Lhs[0].(*ast.Ident)
		if !ok {
			return false, nil
		}
		be, ok := s.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return false, nil
		}
		lv := p.Info.Uses[id]
		for _, side := range []ast.Expr{be.X, be.Y} {
			if sid, ok := side.(*ast.Ident); ok && lv != nil && p.Info.Uses[sid] == lv {
				return true, s.Lhs[0]
			}
		}
	}
	return false, nil
}

// orderSensitiveType reports whether accumulating values of type t is
// sensitive to operand order: floats (rounding is not associative) and
// strings (concatenation order is the output order). Integer sums are
// exact and commutative, so they are exempt.
func orderSensitiveType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

// writeCallName recognizes calls that emit output in call order:
// fmt.Fprint* and Write*/Print*/Encode* methods.
func writeCallName(p *Pass, call *ast.CallExpr) (string, bool) {
	if pkg, name, ok := qualifiedCall(p.Info, call); ok {
		if pkg == "fmt" && (name == "Fprint" || name == "Fprintf" || name == "Fprintln") {
			return "fmt." + name, true
		}
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, isMethod := p.Info.Selections[sel]; !isMethod {
		return "", false
	}
	name := sel.Sel.Name
	for _, prefix := range []string{"Write", "Print", "Encode"} {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return calleeName(call), true
		}
	}
	return "", false
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) < 2 {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
