package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NondetSelect flags channel fan-in patterns whose arrival order leaks
// into aggregated results. Two shapes:
//
//   - a select with two or more receive cases whose bodies append to or
//     accumulate into an outer variable — select picks a ready case
//     uniformly at random, so the aggregate's order is a coin flip;
//   - a range over a channel fed by two or more goroutines in the same
//     function, where the loop body appends/accumulates in arrival
//     order.
//
// A select used purely as a join (empty or control-only bodies, as in
// waiting for N done signals) is deliberately not flagged: joining is
// order-insensitive.
type NondetSelect struct{}

func (NondetSelect) Name() string { return "nondet-select" }
func (NondetSelect) Doc() string {
	return "flags multi-case selects and multi-producer channel fan-in feeding aggregation"
}

func (c NondetSelect) Run(p *Pass) []Finding {
	var out []Finding
	for _, fi := range p.FuncInfos() {
		out = append(out, c.checkSelects(fi)...)
		out = append(out, c.checkFanIn(fi)...)
	}
	return out
}

// aggregates reports whether any statement in body builds up state
// outside the body: an append whose target is declared outside, a
// compound assignment to an outer variable, or a store into an outer
// map/slice element.
func aggregates(fi *FuncInfo, body []ast.Stmt, insideOf ast.Node) bool {
	outer := func(e ast.Expr) bool {
		v := fi.LocalVar(e)
		if v == nil {
			if id, ok := e.(*ast.Ident); ok {
				// Package-level or captured variable: outside by definition.
				if obj, isVar := fi.Pass.Info.ObjectOf(id).(*types.Var); isVar && obj != nil && !fi.isLocal(obj) {
					return true
				}
			}
			return false
		}
		return !(insideOf.Pos() <= v.Pos() && v.Pos() <= insideOf.End())
	}
	found := false
	for _, st := range body {
		ast.Inspect(st, func(n ast.Node) bool {
			if found {
				return false
			}
			switch s := n.(type) {
			case *ast.AssignStmt:
				switch s.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					if outer(s.Lhs[0]) {
						found = true
					}
				case token.ASSIGN, token.DEFINE:
					for i, lhs := range s.Lhs {
						rhs := s.Rhs[0]
						if len(s.Rhs) == len(s.Lhs) {
							rhs = s.Rhs[i]
						}
						// x = append(x, ...) with x outer. Indexed placement
						// (results[i] = v) is NOT aggregation: it is the
						// order-insensitive remedy this checker recommends.
						if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(fi.Pass.Info, call) && outer(lhs) {
							found = true
						}
					}
				}
			}
			return !found
		})
		if found {
			break
		}
	}
	return found
}

func (c NondetSelect) checkSelects(fi *FuncInfo) []Finding {
	p := fi.Pass
	var out []Finding
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		recvCases := 0
		aggregating := false
		for _, cl := range sel.Body.List {
			cc := cl.(*ast.CommClause)
			if cc.Comm == nil {
				continue // default case
			}
			isRecv := false
			switch s := cc.Comm.(type) {
			case *ast.ExprStmt:
				if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					isRecv = true
				}
			case *ast.AssignStmt:
				if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					isRecv = true
				}
			}
			if !isRecv {
				continue
			}
			recvCases++
			if aggregates(fi, cc.Body, sel) {
				aggregating = true
			}
		}
		if recvCases >= 2 && aggregating {
			out = append(out, p.finding(c.Name(), sel.Pos(),
				"select with %d receive cases aggregates into outer state; select picks ready cases in random order, so the aggregate order differs per run — read each channel in a fixed order, or aggregate into per-source slots and merge deterministically", recvCases))
		}
		return true
	})
	return out
}

// checkFanIn flags `for v := range ch` loops that aggregate, where ch
// receives sends from two or more goroutines launched in this function
// (or one goroutine launched in a loop).
func (c NondetSelect) checkFanIn(fi *FuncInfo) []Finding {
	p := fi.Pass

	// Count goroutine-side senders per channel variable.
	senders := map[*types.Var]int{}
	var countSends func(n ast.Node, mult int)
	countSends = func(n ast.Node, mult int) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ForStmt:
				if s.Body != nil {
					countSends(s.Body, 2) // loop body: treat as many
				}
				return false
			case *ast.RangeStmt:
				if s.Body != nil {
					countSends(s.Body, 2)
				}
				return false
			case *ast.GoStmt:
				ast.Inspect(s, func(m ast.Node) bool {
					if send, ok := m.(*ast.SendStmt); ok {
						if ch := fi.LocalVar(send.Chan); ch != nil {
							senders[ch] += mult
						}
					}
					return true
				})
				return false
			}
			return true
		})
	}
	countSends(fi.Decl.Body, 1)
	if len(senders) == 0 {
		return nil
	}

	var out []Finding
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !isChanType(p, rs.X) {
			return true
		}
		ch := fi.LocalVar(rs.X)
		if ch == nil || senders[ch] < 2 {
			return true
		}
		if aggregates(fi, rs.Body.List, rs) {
			out = append(out, p.finding(c.Name(), rs.Pos(),
				"range over channel %s aggregates results in arrival order with %d concurrent senders; arrival order is schedule-dependent — tag results with an index and place them, or collect then sort", ch.Name(), senders[ch]))
		}
		return true
	})
	return out
}
