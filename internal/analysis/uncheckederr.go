package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// UncheckedErr flags calls whose error result is silently dropped — as
// an expression statement, behind go/defer, or stored into a variable
// that is overwritten before it is ever read (the dead-store form the
// dataflow engine tracks: err = f(); err = g() with no use between).
// The persist and trace IO paths must not swallow errors: a short write
// during Predictor.SaveFile that vanishes means a deployment silently
// restarts cold. An explicit `_ = f()` assignment is allowed as a
// visible, deliberate discard.
//
// Allowlisted as never-meaningfully-failing: fmt.Print/Printf/Println,
// fmt.Fprint* to os.Stdout/os.Stderr, and the Write* methods of
// strings.Builder and bytes.Buffer (documented to return nil errors).
type UncheckedErr struct{}

func (UncheckedErr) Name() string { return "unchecked-err" }
func (UncheckedErr) Doc() string {
	return "flags dropped error returns in statements, go/defer calls, and dead error stores"
}

func (c UncheckedErr) Run(p *Pass) []Finding {
	var out []Finding
	check := func(call *ast.CallExpr, how string) {
		if call == nil || !returnsError(p.Info, call) || errAllowlisted(p, call) {
			return
		}
		out = append(out, p.finding(c.Name(), call.Pos(),
			"%s of %s drops its error result; handle it or discard explicitly with _ =", how, calleeName(call)))
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(call, "call")
				}
			case *ast.DeferStmt:
				check(s.Call, "defer")
			case *ast.GoStmt:
				check(s.Call, "go")
			}
			return true
		})
	}
	out = append(out, c.deadStores(p)...)
	return out
}

// deadStores flags an error assigned from a call and then overwritten
// by a later definition in the same block with no read in between. The
// same-block restriction keeps the query path-insensitive-safe:
// definitions in sibling branches never shadow each other here.
func (c UncheckedErr) deadStores(p *Pass) []Finding {
	var out []Finding
	for _, fi := range p.FuncInfos() {
		var errVars []*types.Var
		for obj := range fi.Defs {
			if isErrorType(obj.Type()) {
				errVars = append(errVars, obj)
			}
		}
		sort.Slice(errVars, func(i, j int) bool { return errVars[i].Pos() < errVars[j].Pos() })
		for _, obj := range errVars {
			defs := fi.Defs[obj]
			for i := 0; i+1 < len(defs); i++ {
				d, next := defs[i], defs[i+1]
				if d.Kind != DefAssign || d.Block == nil || d.Block != next.Block {
					continue
				}
				call, ok := d.RHS.(*ast.CallExpr)
				if !ok || errAllowlisted(p, call) {
					continue
				}
				if fi.UsedBetween(obj, d.Stmt.End(), next.Stmt.Pos()) {
					continue
				}
				out = append(out, p.finding(c.Name(), d.Ident.Pos(),
					"error from %s stored in %s is overwritten before it is read; handle it or discard explicitly with _ =", calleeName(call), obj.Name()))
			}
		}
	}
	return out
}

// returnsError reports whether the call's results include an error.
// Type conversions and builtin calls never do.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if ok && tv.IsType() {
		return false // conversion
	}
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// errAllowlisted reports whether the dropped error is conventionally
// meaningless (stdout printing, in-memory buffer writes).
func errAllowlisted(p *Pass, call *ast.CallExpr) bool {
	if pkg, name, ok := qualifiedCall(p.Info, call); ok && pkg == "fmt" {
		switch name {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 &&
				(isStdStream(p, call.Args[0]) || isMemWriter(p.Info.TypeOf(call.Args[0])))
		}
	}
	// Methods on in-memory writers whose errors are documented nil.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, ok := p.Info.Selections[sel]; ok && isMemWriter(s.Recv()) {
			return true
		}
	}
	return false
}

// isMemWriter reports whether t is strings.Builder or bytes.Buffer
// (possibly behind a pointer) — writers whose errors are documented to
// always be nil.
func isMemWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// isStdStream reports whether e is os.Stdout or os.Stderr.
func isStdStream(p *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn := pkgNameOf(p.Info, id)
	return pn != nil && pn.Imported().Path() == "os"
}

// calleeName renders the called expression for the message.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	default:
		return "function"
	}
}
