package analysis

import (
	"go/ast"
)

// UnseededRand flags math/rand usage that is not reproducible from an
// explicit seed: any call through the package-level (globally seeded)
// source, and any rand.NewSource/rand.New seeded from time.Now. Every
// trace/NN/forest component in this repo must thread a seed from its
// Config so the paper's per-seed tables can be regenerated exactly.
type UnseededRand struct{}

func (UnseededRand) Name() string { return "unseeded-rand" }
func (UnseededRand) Doc() string {
	return "flags math/rand global-source calls and time.Now-seeded sources"
}

// randGlobalFuncs are the package-level functions of math/rand and
// math/rand/v2 that draw from the shared, implicitly seeded source.
// New/NewSource/NewPCG/NewChaCha8/NewZipf are deliberately absent: they
// take an explicit seed or source.
var randGlobalFuncs = map[string]bool{
	// math/rand
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
	// math/rand/v2 additions
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

func isRandPkg(path string) bool { return path == "math/rand" || path == "math/rand/v2" }

func (c UnseededRand) Run(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := qualifiedCall(p.Info, call)
			if !ok || !isRandPkg(pkg) {
				return true
			}
			switch {
			case randGlobalFuncs[name]:
				out = append(out, p.finding(c.Name(), call.Pos(),
					"rand.%s draws from the global math/rand source; construct rand.New(rand.NewSource(seed)) with a seed threaded from the caller's Config", name))
			case callsTimeNow(p, call):
				out = append(out, p.finding(c.Name(), call.Pos(),
					"rand.%s seeded from time.Now is not reproducible; thread an explicit seed instead", name))
			}
			return true
		})
	}
	return out
}

// callsTimeNow reports whether any argument subtree calls time.Now.
func callsTimeNow(p *Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := qualifiedCall(p.Info, inner); ok && pkg == "time" && name == "Now" {
				found = true
				return false
			}
			return true
		})
	}
	return found
}
