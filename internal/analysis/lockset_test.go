package analysis

import (
	"sort"
	"strings"
	"testing"
)

// loadLockset loads the engine fixture and builds its lock facts.
func loadLockset(t *testing.T) (*Pass, *CallGraph, *LockFacts) {
	t.Helper()
	loader, pkg := loadFixture(t, "lockset")
	pass := pkg.Pass(loader.Fset)
	return pass, pass.CallGraph(), pass.LockFacts()
}

// methodNode resolves a method of the fixture's box type to its node.
func methodNode(t *testing.T, p *Pass, g *CallGraph, name string) *CGNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Lit == nil && n.Decl.Name.Name == name {
			return n
		}
	}
	t.Fatalf("fixture has no declaration %q", name)
	return nil
}

func TestLockRegionPairing(t *testing.T) {
	p, g, lf := loadLockset(t)

	paired := methodNode(t, p, g, "paired")
	regs := lf.Regions(paired)
	if len(regs) != 1 {
		t.Fatalf("paired has %d regions, want 1", len(regs))
	}
	r := regs[0]
	if r.Key != "T:box.mu" || r.RLock {
		t.Errorf("region = %q rlock=%v, want T:box.mu write lock", r.Key, r.RLock)
	}
	if r.End == paired.Body().End() {
		t.Errorf("paired region should close at the positional Unlock, not the body end")
	}

	deferred := methodNode(t, p, g, "deferred")
	dregs := lf.Regions(deferred)
	if len(dregs) != 1 || dregs[0].End != deferred.Body().End() {
		t.Errorf("deferred unlock must leave the region open to the body end; regions = %+v", dregs)
	}

	reads := methodNode(t, p, g, "reads")
	rregs := lf.Regions(reads)
	if len(rregs) != 1 || !rregs[0].RLock || rregs[0].Key != "T:box.rw" {
		t.Errorf("reads regions = %+v, want one RLock region of T:box.rw", rregs)
	}
}

func TestEntryLocksetPropagation(t *testing.T) {
	p, g, lf := loadLockset(t)
	cases := []struct {
		fn   string
		want []string
	}{
		{"helper", []string{"T:box.mu"}}, // sole caller holds mu
		{"shared", nil},                  // one caller holds, one does not
		{"child", nil},                   // goroutine body: never inherits
		{"Exported", nil},                // callers outside the package
		{"paired", nil},                  // no in-package callers
	}
	for _, tc := range cases {
		n := methodNode(t, p, g, tc.fn)
		// At the opening brace no local region covers, so HeldAt is
		// exactly the entry lockset.
		got := sortedKeys(lf.HeldAt(n, n.Body().Lbrace))
		if strings.Join(got, ",") != strings.Join(tc.want, ",") {
			t.Errorf("entry lockset of %s = %v, want %v", tc.fn, got, tc.want)
		}
	}
}

func TestHeldAtInsideRegion(t *testing.T) {
	p, g, lf := loadLockset(t)
	paired := methodNode(t, p, g, "paired")
	r := lf.Regions(paired)[0]
	if held := lf.HeldAt(paired, r.Start+1); !held["T:box.mu"] {
		t.Errorf("HeldAt inside the region = %v, want T:box.mu held", sortedKeys(held))
	}
	if held := lf.HeldAt(paired, r.End+1); len(held) != 0 {
		t.Errorf("HeldAt after the unlock = %v, want empty", sortedKeys(held))
	}
}

func TestMayAcquireSummary(t *testing.T) {
	p, g, lf := loadLockset(t)
	orderOuter := methodNode(t, p, g, "orderOuter")
	got := sortedKeys(lf.Acquired(orderOuter))
	if strings.Join(got, ",") != "G:gmu,T:box.mu" {
		t.Errorf("Acquired(orderOuter) = %v, want [G:gmu T:box.mu]", got)
	}
	// The launch in spawnsLocker must not leak takeMu's lock into the
	// spawner's summary.
	spawner := methodNode(t, p, g, "spawnsLocker")
	if acq := lf.Acquired(spawner); len(acq) != 0 {
		t.Errorf("Acquired(spawnsLocker) = %v, want empty (launch excluded)", sortedKeys(acq))
	}
	if !lf.Launched(methodNode(t, p, g, "takeMu")) {
		t.Errorf("takeMu is go-launched by spawnsLocker; Launched should report it")
	}
}

func TestLockOrderGraphAndCycles(t *testing.T) {
	_, _, lf := loadLockset(t)

	edges := map[string]bool{}
	for _, e := range lf.OrderEdges() {
		edges[e.From+"->"+e.To] = true
		if e.Why == "" {
			t.Errorf("edge %s->%s has no why step", e.From, e.To)
		}
	}
	for _, want := range []string{
		"G:gmu->T:box.mu", // through the takeMu call
		"G:gmu->G:gmu2",   // cycA
		"G:gmu2->G:gmu",   // cycB
	} {
		if !edges[want] {
			t.Errorf("order graph is missing edge %s; has %v", want, sortedEdgeKeys(edges))
		}
	}

	cycles := lf.OrderCycles()
	if len(cycles) != 1 {
		t.Fatalf("OrderCycles = %d cycles, want exactly 1 (the gmu/gmu2 inversion, deduped across both starting edges)", len(cycles))
	}
	keys := map[string]bool{}
	for _, e := range cycles[0] {
		keys[e.From] = true
		if !strings.Contains(e.Why, "acquires") {
			t.Errorf("cycle why step %q should describe an acquisition", e.Why)
		}
	}
	if got := strings.Join(sortedKeys(keys), ","); got != "G:gmu,G:gmu2" {
		t.Errorf("cycle keys = %s, want G:gmu,G:gmu2", got)
	}
}

func sortedEdgeKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// stubChecker emits a fixed finding list; used to pin RunAll's
// (position, check) dedupe.
type stubChecker struct{ fs []Finding }

func (stubChecker) Name() string          { return "stub" }
func (stubChecker) Doc() string           { return "test stub" }
func (s stubChecker) Run(*Pass) []Finding { return s.fs }

// TestRunAllDedupesPositionCheck pins the satellite contract: two
// findings of one check at one position collapse to the first
// (lexically smallest message); distinct checks at the position
// survive.
func TestRunAllDedupesPositionCheck(t *testing.T) {
	loader, pkg := loadFixture(t, "lockset") // any clean pass will do
	pass := pkg.Pass(loader.Fset)
	dup := Finding{Check: "stub", File: "f.go", Line: 3, Col: 1, Message: "b duplicate"}
	first := Finding{Check: "stub", File: "f.go", Line: 3, Col: 1, Message: "a first"}
	other := Finding{Check: "stub", File: "f.go", Line: 4, Col: 1, Message: "other line"}
	got := RunAll(pass, []Checker{stubChecker{fs: []Finding{dup, first, other}}})
	if len(got) != 2 {
		t.Fatalf("RunAll returned %d findings, want 2 after dedupe: %v", len(got), got)
	}
	if got[0].Message != "a first" || got[1].Message != "other line" {
		t.Errorf("dedupe kept %q/%q, want the lexically smallest message per position", got[0].Message, got[1].Message)
	}
}

// TestLaunchDedupeFixture runs the full checker suite over a launch
// that triggers naked-goroutine, bare-panic-goroutine, AND
// goroutine-lifecycle at the same go statement: each check must report
// exactly once there.
func TestLaunchDedupeFixture(t *testing.T) {
	loader, pkg := loadFixture(t, "launch-dedupe")
	pass := pkg.Pass(loader.Fset)
	got := RunAll(pass, nil)

	count := map[string]int{}
	for _, f := range got {
		count[f.Check]++
	}
	for _, check := range []string{"naked-goroutine", "bare-panic-goroutine", "goroutine-lifecycle"} {
		if count[check] != 1 {
			t.Errorf("%s fired %d time(s) on the launch, want exactly 1; findings: %v", check, count[check], got)
		}
	}
	seen := map[string]bool{}
	for _, f := range got {
		key := f.String()
		if seen[key] {
			t.Errorf("duplicate finding survived RunAll: %s", key)
		}
		seen[key] = true
	}
}
