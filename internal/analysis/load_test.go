package analysis

import (
	"go/build"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// writeTree creates a temporary file tree from relative path -> content.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoadDirParseError(t *testing.T) {
	root := writeTree(t, map[string]string{
		"bad.go": "package bad\n\nfunc broken( {\n",
	})
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadDir(root); err == nil {
		t.Fatal("LoadDir accepted a file with a syntax error")
	}
	// The failed load must not be memoized as a success or a cycle.
	if _, err := loader.LoadDir(root); err == nil || strings.Contains(err.Error(), "cycle") {
		t.Fatalf("second LoadDir after parse error: %v", err)
	}
}

func TestLoadDirTypeError(t *testing.T) {
	root := writeTree(t, map[string]string{
		"bad.go": "package bad\n\nvar x int = \"not an int\"\n",
	})
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.LoadDir(root)
	if err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("LoadDir on type error = %v, want type-checking error", err)
	}
	// Retry must surface the same error, not a bogus cycle report.
	if _, err := loader.LoadDir(root); err == nil || strings.Contains(err.Error(), "cycle") {
		t.Fatalf("second LoadDir after type error: %v", err)
	}
}

func TestLoadDirSkipsBuildTagged(t *testing.T) {
	root := writeTree(t, map[string]string{
		"ok.go": "package p\n\nfunc Kept() {}\n",
		"gen.go": "//go:build ignore\n\npackage main\n\n" +
			"func main() { undefinedOnPurpose() }\n",
		"legacy.go": "// +build ignore\n\npackage main\n\n" +
			"func alsoExcluded() { stillUndefined() }\n",
	})
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(root)
	if err != nil {
		t.Fatalf("LoadDir should skip build-tag-excluded files: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (only ok.go)", len(pkg.Files))
	}
	if pkg.Pkg.Scope().Lookup("Kept") == nil {
		t.Error("ok.go not type-checked")
	}
}

func TestLoadDirEvaluatesTargetConstraints(t *testing.T) {
	arch := build.Default.GOARCH
	other := "arm64"
	if arch == other {
		other = "amd64"
	}
	root := writeTree(t, map[string]string{
		"ok.go": "package p\n\nfunc Kept() int { return impl() }\n",
		// Satisfied constraint: must be type-checked (it defines impl).
		"native.go": "//go:build " + arch + "\n\npackage p\n\nfunc impl() int { return 1 }\n",
		// Unsatisfied negation: skipping it is what keeps impl unique.
		"fallback.go": "//go:build !" + arch + "\n\npackage p\n\nfunc impl() int { return 0 }\n",
		// Wrong-arch filename suffix, no constraint comment at all.
		"p_" + other + ".go": "package p\n\nfunc suffixExcluded() { alsoUndefined() }\n",
	})
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(root)
	if err != nil {
		t.Fatalf("LoadDir should evaluate GOOS/GOARCH constraints: %v", err)
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("loaded %d files, want 2 (ok.go + native.go)", len(pkg.Files))
	}
	if pkg.Pkg.Scope().Lookup("Kept") == nil {
		t.Error("ok.go not type-checked")
	}
}

func TestLoadDirNoBuildableFiles(t *testing.T) {
	root := writeTree(t, map[string]string{
		"only_test.go": "package p\n",
		"notes.txt":    "not go",
	})
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.LoadDir(root)
	if err == nil || !strings.Contains(err.Error(), "no buildable Go files") {
		t.Fatalf("LoadDir = %v, want no-buildable-files error", err)
	}
}

func TestPackageDirsSkipsNonPackageTrees(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go":                "package a\n",
		"a/testdata/fixture.go": "package fixture\n",
		"vendor/v/v.go":         "package v\n",
		".hidden/h.go":          "package h\n",
		"_tools/t.go":           "package t\n",
		"b/only_test.go":        "package b\n",
		"b/c/c.go":              "package c\n",
	})
	dirs, err := PackageDirs(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		filepath.Join(root, "a"),
		filepath.Join(root, "b", "c"),
	}
	if len(dirs) != len(want) {
		t.Fatalf("PackageDirs = %v, want %v", dirs, want)
	}
	for i := range want {
		if dirs[i] != want[i] {
			t.Fatalf("PackageDirs[%d] = %q, want %q", i, dirs[i], want[i])
		}
	}
}

func TestPackageDirsSkipSet(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go": "package a\n",
		"b/b.go": "package b\n",
	})
	skip := map[string]bool{filepath.Join(root, "b"): true}
	dirs, err := PackageDirs(root, skip)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != filepath.Join(root, "a") {
		t.Fatalf("PackageDirs with skip = %v", dirs)
	}
}

// TestLoaderConcurrentLoad pins the loader's race safety under `go
// test -race`: one loader, several goroutines, two package trees that
// share a dependency carrying a //prionnvet:confined annotation. Every
// structure this exercises — the byDir memo (with its nil cycle
// guard), byPath, and the confined registry — was mutated bare before
// the loads were serialized on Loader.mu.
func TestLoaderConcurrentLoad(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module demo\n\ngo 1.22\n",
		"shared/shared.go": "package shared\n\n" +
			"//prionnvet:confined -- scratch buffer reuse\n" +
			"func Scratch() {}\n",
		"alpha/alpha.go": "package alpha\n\nimport \"demo/shared\"\n\n" +
			"func UseA() { shared.Scratch() }\n",
		"beta/beta.go": "package beta\n\nimport \"demo/shared\"\n\n" +
			"func UseB() { shared.Scratch() }\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs := []string{
		filepath.Join(root, "alpha"),
		filepath.Join(root, "beta"),
		filepath.Join(root, "shared"),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4*len(dirs))
	for round := 0; round < 4; round++ {
		for _, dir := range dirs {
			wg.Add(1)
			go func(dir string) {
				defer wg.Done()
				pkg, err := loader.LoadDir(dir)
				if err != nil {
					errs <- err
					return
				}
				// Reading the snapshot must be safe while other
				// goroutines keep loading.
				for fn := range pkg.Confined {
					_ = fn.Name()
				}
				errs <- nil
			}(dir)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent LoadDir: %v", err)
		}
	}
	// Both dependents' snapshots must contain the shared annotation.
	for _, dir := range dirs[:2] {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for fn := range pkg.Confined {
			if fn.Name() == "Scratch" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s snapshot is missing the shared //prionnvet:confined annotation", filepath.Base(dir))
		}
	}
}

func TestModulePathParsing(t *testing.T) {
	cases := []struct {
		gomod, want string
	}{
		{"module prionn\n\ngo 1.22\n", "prionn"},
		{"// comment\nmodule \"quoted/path\"\n", "quoted/path"},
		{"go 1.22\n", ""},
	}
	for _, tc := range cases {
		if got := modulePath(tc.gomod); got != tc.want {
			t.Errorf("modulePath(%q) = %q, want %q", tc.gomod, got, tc.want)
		}
	}
}
