package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LoopCapture flags goroutine and defer closures that capture a loop
// variable by reference instead of receiving it as an argument. Go 1.22
// made loop variables per-iteration, but the repo's parallel kernels
// pass bounds explicitly (see tensor.ParallelFor) so intent is visible
// at the launch site and the code stays correct if ever built with an
// older toolchain or copied into one. It also flags the now-redundant
// `x := x` shadow idiom inside loop bodies, which reads as load-bearing
// but no longer is.
type LoopCapture struct{}

func (LoopCapture) Name() string { return "loopvar-capture" }
func (LoopCapture) Doc() string {
	return "flags go/defer closures capturing loop variables and redundant x := x shadows"
}

func (c LoopCapture) Run(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			vars := map[types.Object]bool{}
			switch loop := n.(type) {
			case *ast.RangeStmt:
				body = loop.Body
				for _, e := range []ast.Expr{loop.Key, loop.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := p.Info.Defs[id]; obj != nil {
							vars[obj] = true
						}
					}
				}
			case *ast.ForStmt:
				body = loop.Body
				if init, ok := loop.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					for _, e := range init.Lhs {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := p.Info.Defs[id]; obj != nil {
								vars[obj] = true
							}
						}
					}
				}
			default:
				return true
			}
			if len(vars) == 0 {
				return true
			}
			out = append(out, c.checkBody(p, body, vars)...)
			return true
		})
	}
	return out
}

func (c LoopCapture) checkBody(p *Pass, body *ast.BlockStmt, vars map[types.Object]bool) []Finding {
	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				for _, name := range capturedLoopVars(p, lit, vars) {
					out = append(out, p.finding(c.Name(), s.Pos(),
						"goroutine closure captures loop variable %s; pass it as an argument so the iteration binding is explicit", name))
				}
			}
		case *ast.DeferStmt:
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				for _, name := range capturedLoopVars(p, lit, vars) {
					out = append(out, p.finding(c.Name(), s.Pos(),
						"deferred closure captures loop variable %s; defers run after the loop ends — pass the value as an argument", name))
				}
			}
		case *ast.AssignStmt:
			// The pre-1.22 `x := x` shadow idiom: flag when a loop var is
			// redeclared from itself directly in the loop body.
			if s.Tok == token.DEFINE && len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					l, lok := s.Lhs[i].(*ast.Ident)
					r, rok := s.Rhs[i].(*ast.Ident)
					if lok && rok && l.Name == r.Name {
						if obj := p.Info.Uses[r]; obj != nil && vars[obj] {
							out = append(out, p.finding(c.Name(), s.Pos(),
								"%s := %s shadows a per-iteration loop variable; redundant since Go 1.22", l.Name, r.Name))
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// capturedLoopVars returns the names of loop variables from vars that
// the function literal references without redeclaring.
func capturedLoopVars(p *Pass, lit *ast.FuncLit, vars map[types.Object]bool) []string {
	seen := map[string]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := p.Info.Uses[id]; obj != nil && vars[obj] && !seen[id.Name] {
			seen[id.Name] = true
			names = append(names, id.Name)
		}
		return true
	})
	return names
}
