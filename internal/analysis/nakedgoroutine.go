package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NakedGoroutine flags `go` statements in functions with no visible
// join: no sync.WaitGroup Wait, no channel receive, no select. A fire-
// and-forget goroutine in the tensor/sched parallel paths can outlive
// the kernel that spawned it and race the next operation on the same
// buffers; every launch must be paired with a join in the same function
// (as ParallelFor does) or carry a justified suppression.
//
// The join detection is a function-scoped heuristic: evidence anywhere
// in the innermost enclosing function body counts for every goroutine
// launched there.
type NakedGoroutine struct{}

func (NakedGoroutine) Name() string { return "naked-goroutine" }
func (NakedGoroutine) Doc() string {
	return "flags go statements with no WaitGroup/channel join in the same function"
}

func (c NakedGoroutine) Run(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			joined := hasJoin(p, body)
			for _, g := range directGoStmts(body) {
				if !joined {
					out = append(out, p.finding(c.Name(), g.Pos(),
						"goroutine has no join (WaitGroup Wait, channel receive, or select) in the enclosing function"))
				}
			}
			return true
		})
	}
	return out
}

// directGoStmts returns the go statements whose innermost enclosing
// function is the one owning body (i.e. not those inside nested
// function literals, which are attributed to the literal).
func directGoStmts(body *ast.BlockStmt) []*ast.GoStmt {
	var gos []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // its go statements belong to the literal
		case *ast.GoStmt:
			gos = append(gos, s)
			// Still descend into the launched call's arguments, but the
			// launched FuncLit itself is cut off above.
		}
		return true
	})
	return gos
}

// hasJoin reports whether body contains any plausible join point: a
// .Wait() call, a channel receive, a range over a channel, or a select.
func hasJoin(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if isChanType(p, e.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isChanType(p *Pass, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
