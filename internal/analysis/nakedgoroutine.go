package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NakedGoroutine flags `go` statements in functions with no visible
// join: no sync.WaitGroup Wait, no channel receive, no select. A fire-
// and-forget goroutine in the tensor/sched parallel paths can outlive
// the kernel that spawned it and race the next operation on the same
// buffers; every launch must be paired with a join in the same function
// (as ParallelFor does) or carry a justified suppression.
//
// The join detection is a function-scoped heuristic: evidence anywhere
// in the innermost enclosing function body counts for every goroutine
// launched there. The dataflow engine adds the caller-joins cases: a
// goroutine that signals through a *sync.WaitGroup parameter, or
// through a channel that is a parameter or is returned to the caller,
// hands its join to the caller and is not naked.
type NakedGoroutine struct{}

func (NakedGoroutine) Name() string { return "naked-goroutine" }
func (NakedGoroutine) Doc() string {
	return "flags go statements with no WaitGroup/channel join in the same function"
}

func (c NakedGoroutine) Run(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			joined := hasJoin(p, body)
			for _, g := range directGoStmts(body) {
				if !joined && !joinEscapes(p, g) {
					out = append(out, p.finding(c.Name(), g.Pos(),
						"goroutine has no join (WaitGroup Wait, channel receive, or select) in the enclosing function"))
				}
			}
			return true
		})
	}
	return out
}

// directGoStmts returns the go statements whose innermost enclosing
// function is the one owning body (i.e. not those inside nested
// function literals, which are attributed to the literal).
func directGoStmts(body *ast.BlockStmt) []*ast.GoStmt {
	var gos []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // its go statements belong to the literal
		case *ast.GoStmt:
			gos = append(gos, s)
			// Still descend into the launched call's arguments, but the
			// launched FuncLit itself is cut off above.
		}
		return true
	})
	return gos
}

// hasJoin reports whether body contains any plausible join point: a
// .Wait() call, a channel receive, a range over a channel, or a select.
func hasJoin(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if isChanType(p, e.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// joinEscapes reports whether the goroutine's join is visibly handed to
// the caller: the launched code references a *sync.WaitGroup that is a
// parameter (the caller Waits), or a channel that is a parameter or is
// returned from the function (the caller receives).
func joinEscapes(p *Pass, g *ast.GoStmt) bool {
	fi := p.FuncInfoAt(g.Pos())
	if fi == nil {
		return false
	}
	// Channels returned to the caller.
	returned := map[*types.Var]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if v := fi.LocalVar(res); v != nil && isChan(v.Type()) {
				returned[v] = true
			}
		}
		return true
	})

	escapes := false
	ast.Inspect(g, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || obj == nil {
			return true
		}
		switch {
		case fi.ParamObjs[obj] && (isWaitGroup(obj.Type()) || isChan(obj.Type())):
			escapes = true
		case returned[obj]:
			escapes = true
		}
		return !escapes
	})
	return escapes
}

// isWaitGroup reports whether t is sync.WaitGroup, possibly behind a
// pointer.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isChanType(p *Pass, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
