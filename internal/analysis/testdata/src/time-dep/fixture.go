package fixture

import (
	"fmt"
	"time"
)

type result struct {
	Elapsed float64
	Rows    []string
}

func returnsElapsed() float64 {
	start := time.Now()
	work()
	return time.Since(start).Seconds() // want "returned as data"
}

func launderedReturn() float64 {
	start := time.Now()
	work()
	sec := time.Since(start).Seconds()
	return sec // want "returned as data"
}

func storesField(res *result) {
	start := time.Now()
	work()
	res.Elapsed = time.Since(start).Seconds() // want "stored into field Elapsed"
}

func storesMap(secs map[string]float64) {
	start := time.Now()
	work()
	secs["run"] = time.Since(start).Seconds() // want "stored into an indexed element"
}

func appendsRow() []string {
	start := time.Now()
	work()
	var rows []string
	rows = append(rows, fmt.Sprintf("%.2f", time.Since(start).Seconds())) // want "appended to rows"
	return rows
}

func sendsTiming(ch chan time.Duration) {
	start := time.Now()
	work()
	ch <- time.Since(start) // want "sent on a channel"
}

func logsOK() {
	start := time.Now()
	work()
	fmt.Printf("took %.2fs\n", time.Since(start).Seconds()) // ok: logging stays in logs
}

func timeoutOK(limit time.Duration) bool {
	start := time.Now()
	work()
	return time.Since(start) > limit // ok: control-flow comparison, not data
}

func work() {}
