package fixture

import (
	"math/rand"
	"time"
)

func globalSource() int {
	rand.Seed(42)            // want "global math/rand source"
	x := rand.Intn(10)       // want "global math/rand source"
	_ = rand.Float64()       // want "global math/rand source"
	rand.Shuffle(3, swapper) // want "global math/rand source"
	return x
}

func timeSeeded() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want "not reproducible"
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: explicit seed threaded in
}

func seededUse(rng *rand.Rand) int {
	return rng.Intn(10) // ok: method on an explicit generator
}

func swapper(i, j int) {}
