// Package fixture exercises the lockset engine (lockset.go): region
// pairing, entry-lockset propagation, may-acquire summaries, and the
// lock-order graph. It is read by lockset_test.go, not by a checker.
package fixture

import "sync"

var (
	gmu  sync.Mutex
	gmu2 sync.Mutex
)

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// paired: the region closes at the positional Unlock.
func (b *box) paired() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.n--
}

// deferred: the region runs to the body end.
func (b *box) deferred() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// reads: an RLock region.
func (b *box) reads() {
	b.rw.RLock()
	b.n++
	b.rw.RUnlock()
}

// helper is only ever called under b.mu: its entry lockset is {mu}.
func (b *box) caller() {
	b.mu.Lock()
	b.helper()
	b.mu.Unlock()
}

func (b *box) helper() {
	b.n++
}

// Exported functions never trust in-package callers: entry is empty.
func (b *box) callsExported() {
	b.mu.Lock()
	b.Exported()
	b.mu.Unlock()
}

func (b *box) Exported() {}

// A goroutine runs concurrently with its spawner's locks: entry empty.
func (b *box) spawns() {
	b.mu.Lock()
	go b.child()
	b.mu.Unlock()
}

func (b *box) child() {}

// shared has one caller holding the lock and one not: the must-hold
// intersection is empty.
func (b *box) mixedA() {
	b.mu.Lock()
	b.shared()
	b.mu.Unlock()
}

func (b *box) mixedB() {
	b.shared()
}

func (b *box) shared() {}

// orderOuter acquires gmu then reaches b.mu through takeMu: one order
// edge through a call.
func (b *box) orderOuter() {
	gmu.Lock()
	b.takeMu()
	gmu.Unlock()
}

func (b *box) takeMu() {
	b.mu.Lock()
	b.mu.Unlock()
}

// spawnsLocker launches takeMu: the spawned acquisition must NOT leak
// into the spawner's may-acquire summary.
func (b *box) spawnsLocker() {
	go b.takeMu()
}

// cycA/cycB invert each other's order: the engine's one cycle.
func cycA() {
	gmu.Lock()
	gmu2.Lock()
	gmu2.Unlock()
	gmu.Unlock()
}

func cycB() {
	gmu2.Lock()
	gmu.Lock()
	gmu.Unlock()
	gmu2.Unlock()
}
