// Package fixture exercises the arena-leak checker against a local
// pool with the same Get/Put discipline as tensor.Arena.
package fixture

type buf struct{ data []byte }

type pool struct{ free []*buf }

func (p *pool) Get(n int) *buf { return &buf{data: make([]byte, n)} }

func (p *pool) Put(b *buf) { p.free = append(p.free, b) }

func (p *pool) Reuse(b *buf, n int) *buf {
	p.Put(b)
	return p.Get(n)
}

func leaks(p *pool) byte {
	b := p.Get(64) // want "never released"
	return b.data[0]
}

func discards(p *pool) {
	p.Get(64) // want "discarded"
}

func releases(p *pool) {
	b := p.Get(64)
	b.data[0] = 1
	p.Put(b)
}

func deferredRelease(p *pool) int {
	b := p.Get(64)
	defer p.Put(b)
	if len(b.data) > 0 {
		return 1 // ok: the deferred Put covers this path
	}
	return 0
}

func earlyReturn(p *pool, bad bool) int {
	b := p.Get(64)
	if bad {
		return -1 // want "leaks arena buffer b"
	}
	p.Put(b)
	return 0
}

// releaseHelper's parameter is released inside: handing a buffer to it
// discharges the caller (interprocedural).
func releaseHelper(p *pool, b *buf) {
	b.data[0] = 0
	p.Put(b)
}

func viaHelper(p *pool) {
	b := p.Get(64)
	releaseHelper(p, b) // ok
}

// consume only reads its parameter: passing a buffer to it discharges
// nothing.
func consume(b *buf) int { return len(b.data) }

func helperNoRelease(p *pool) int {
	b := p.Get(64) // want "never released"
	return consume(b)
}

type holder struct{ b *buf }

func escapes(p *pool, h *holder) {
	b := p.Get(64)
	h.b = b // ok: ownership stored away
}

func fresh(p *pool) *buf {
	return p.Get(64) // ok: the caller owns the result
}

func reuses(p *pool, prev *buf) *buf {
	return p.Reuse(prev, 128) // ok: recycles prev, caller owns the result
}
