package fixture

type celsius float64

func eq64(a, b float64) bool {
	return a == b // want "compares floats exactly"
}

func neq32(a, b float32) bool {
	return a != b // want "compares floats exactly"
}

func named(a, b celsius) bool {
	return a == b // want "compares floats exactly"
}

func mixedConst(a float64) bool {
	return a == 0.5 // want "compares floats exactly"
}

func nanProbe(x float64) bool {
	return x != x // ok: the standard NaN test
}

func ints(a, b int) bool {
	return a == b // ok: exact integer comparison
}

func strs(a, b string) bool {
	return a == b // ok
}
