package fixture

type celsius float64

func eq64(a, b float64) bool {
	return a == b // want "compares floats exactly"
}

func neq32(a, b float32) bool {
	return a != b // want "compares floats exactly"
}

func named(a, b celsius) bool {
	return a == b // want "compares floats exactly"
}

func mixedConst(a float64) bool {
	return a == 0.5 // want "compares floats exactly"
}

func nanProbe(x float64) bool {
	return x != x // ok: the standard NaN test
}

type config struct{ Frac float64 }

func zeroSentinelField(c config) bool {
	return c.Frac == 0 // ok: sentinel test on a pure load
}

func zeroSentinelRange(ws []float64) int {
	n := 0
	for _, w := range ws {
		if w == 0 { // ok: range value is a load
			n++
		}
	}
	return n
}

func zeroAfterArith(a, b float64) bool {
	d := a - b
	return d == 0 // want "compares floats exactly"
}

func zeroAccum(xs []float64) bool {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum != 0 // want "compares floats exactly"
}

func ints(a, b int) bool {
	return a == b // ok: exact integer comparison
}

func strs(a, b string) bool {
	return a == b // ok
}
