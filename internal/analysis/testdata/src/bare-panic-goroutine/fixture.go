package fixture

import "sync"

// Detached launch of a closure with no recover: a panic inside kills
// the process.
func detachedBare() {
	go func() { // want "no deferred recover"
		work()
	}()
}

// Detached launch of a same-package named function with no recover.
func detachedNamed() {
	go work() // want "no deferred recover"
}

// Detached, but the goroutine opens with a deferred recover — the
// supervised-worker pattern.
func detachedGuarded() {
	go func() { // ok: deferred recover guards the frame
		defer func() {
			_ = recover()
		}()
		work()
	}()
}

// Detached named function whose declaration carries the guard.
func detachedGuardedNamed() {
	go guardedWork() // ok: guardedWork defers a recover
}

// A recover deferred later in the body still guards the goroutine's top
// frame.
func guardLaterInBody() {
	go func() { // ok: recover deferred mid-body
		work()
		defer func() { recover() }()
		work()
	}()
}

// A recover inside a nested, non-deferred closure guards that closure's
// frame, not the goroutine's.
func nestedGuardDoesNotCount() {
	go func() { // want "no deferred recover"
		inner := func() {
			defer func() { _ = recover() }()
			work()
		}
		inner()
	}()
}

// Joined goroutines are out of scope: they do not outlive the spawner
// (and naked-goroutine owns unjoined-lifetime findings).
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // ok: joined below
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// Join handed to the caller via a WaitGroup parameter is also bounded.
func callerJoins(wg *sync.WaitGroup) {
	go func() { // ok: caller Waits on the parameter
		defer wg.Done()
		work()
	}()
}

// A launch the checker cannot see into is skipped, not guessed at.
func unresolvable(f func()) {
	go f() // ok: opaque target
}

func work() {}

func guardedWork() {
	defer func() {
		if r := recover(); r != nil {
			_ = r
		}
	}()
	work()
}
