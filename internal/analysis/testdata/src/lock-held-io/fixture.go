// Package fixture exercises the lock-held-io checker: mutexes held
// across operations with unbounded latency.
package fixture

import (
	"os"
	"sync"
	"time"
)

type server struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
}

func (s *server) badIO(path string, data []byte) error {
	s.mu.Lock()
	err := os.WriteFile(path, data, 0o600) // want "os.WriteFile"
	s.mu.Unlock()
	return err
}

func (s *server) badSleep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep"
}

func (s *server) badSend(v int) {
	s.rw.RLock()
	s.ch <- v // want "channel send"
	s.rw.RUnlock()
}

func (s *server) badRecv() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive"
}

func (s *server) okSelectDefault(v int) bool {
	s.rw.RLock()
	defer s.rw.RUnlock()
	select {
	case s.ch <- v: // ok: non-blocking admission idiom
		return true
	default:
		return false
	}
}

func (s *server) okOutside(path string, data []byte) error {
	s.mu.Lock()
	n := len(data)
	s.mu.Unlock()
	_ = n
	return os.WriteFile(path, data, 0o600) // ok: lock already released
}

// save reaches file IO; callers holding a lock inherit the fact
// through the call graph.
func save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600)
}

func (s *server) badCall(path string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return save(path, data) // want "reaches file IO"
}
