package fixture

import "sync"

func selectAggregates(a, b chan float64) []float64 {
	var out []float64
	for i := 0; i < 4; i++ {
		select { // want "select with 2 receive cases aggregates"
		case v := <-a:
			out = append(out, v)
		case v := <-b:
			out = append(out, v)
		}
	}
	return out
}

func selectAccum(a, b chan float64) float64 {
	var sum float64
	for i := 0; i < 2; i++ {
		select { // want "select with 2 receive cases aggregates"
		case v := <-a:
			sum += v
		case v := <-b:
			sum += v
		}
	}
	return sum
}

func selectJoinOK(done, stop chan struct{}) {
	select { // ok: join only, order-insensitive
	case <-done:
	case <-stop:
	}
}

func fanInAppend() []int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	go func() { ch <- 2; close(ch) }()
	var out []int
	for v := range ch { // want "aggregates results in arrival order"
		out = append(out, v)
	}
	return out
}

func fanInLoopSenders(xs []int) []int {
	ch := make(chan int)
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		x := x
		go func() { defer wg.Done(); ch <- x }()
	}
	go func() { wg.Wait(); close(ch) }()
	var out []int
	for v := range ch { // want "aggregates results in arrival order"
		out = append(out, v)
	}
	return out
}

func singleProducerOK(xs []int) []int {
	ch := make(chan int)
	go func() {
		for _, x := range xs {
			ch <- x
		}
		close(ch)
	}()
	var out []int
	for v := range ch { // ok: one producer, order matches xs
		out = append(out, v)
	}
	return out
}

func indexedPlacementOK(xs []float64) []float64 {
	type tagged struct {
		i int
		v float64
	}
	ch := make(chan tagged)
	var wg sync.WaitGroup
	for i, x := range xs {
		wg.Add(1)
		i, x := i, x
		go func() { defer wg.Done(); ch <- tagged{i, x * x} }()
	}
	go func() { wg.Wait(); close(ch) }()
	out := make([]float64, len(xs))
	for t := range ch { // ok: indexed placement is order-insensitive
		out[t.i] = t.v
	}
	return out
}
