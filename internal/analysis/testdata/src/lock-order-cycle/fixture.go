// Package fixture exercises the lock-order-cycle checker: two paths
// acquiring the same locks in opposite orders.
package fixture

import "sync"

var (
	a sync.Mutex
	b sync.Mutex
)

// lockAB takes a then b; lockBA takes b then a. Interleaved, each
// holds the lock the other needs.
func lockAB() {
	a.Lock()
	b.Lock() // want "lock-order cycle"
	b.Unlock()
	a.Unlock()
}

func lockBA() {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}

type pair struct {
	x sync.Mutex
	y sync.Mutex
}

// lockXthenY inverts lockYthenX's order through a call: the y
// acquisition is inside takeY, reached while x is held.
func (p *pair) lockXthenY() {
	p.x.Lock()
	p.takeY() // want "lock-order cycle"
	p.x.Unlock()
}

func (p *pair) takeY() {
	p.y.Lock()
	p.y.Unlock()
}

func (p *pair) lockYthenX() {
	p.y.Lock()
	p.x.Lock()
	p.x.Unlock()
	p.y.Unlock()
}

var (
	m1 sync.Mutex
	m2 sync.Mutex
)

// ordered1/ordered2 both take m1 before m2: one consistent order, no
// cycle, no finding.
func ordered1() {
	m1.Lock()
	m2.Lock()
	m2.Unlock()
	m1.Unlock()
}

func ordered2() {
	m1.Lock()
	m2.Lock()
	m2.Unlock()
	m1.Unlock()
}
