package fixture

import "sync"

func captures(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() { // want "captures loop variable it"
			defer wg.Done()
			sink(it)
		}()
	}
	wg.Wait()
}

func forLoopCapture(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want "captures loop variable i"
			defer wg.Done()
			sink(i)
		}()
	}
	wg.Wait()
}

func deferCapture(items []int) {
	for i := range items {
		defer func() { // want "captures loop variable i"
			sink(i)
		}()
	}
}

func redundantShadow(items []int) {
	for _, it := range items {
		it := it // want "shadows a per-iteration loop variable"
		sink(it)
	}
}

func passesArg(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(v int) { // ok: iteration value passed explicitly
			defer wg.Done()
			sink(v)
		}(it)
	}
	wg.Wait()
}

func usesOutsideClosure(items []int) {
	for _, it := range items {
		sink(it) // ok: plain use, no closure
	}
}

func sink(int) {}
