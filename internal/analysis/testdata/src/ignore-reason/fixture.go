// Package fixture exercises the ignore-reason meta-finding: a
// suppression without " -- reason" still suppresses the named check
// but is itself reported, and cannot be self-suppressed.
package fixture

func compare(a, b float64) bool {
	return a == b //prionnvet:ignore float-eq
}

func alsoBad(a, b float64) bool {
	return a == b //prionnvet:ignore float-eq -- exact sentinel comparison, set by the same code path
}
