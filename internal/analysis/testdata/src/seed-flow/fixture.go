package fixture

import (
	"math/rand"
	"sync"
	"time"
)

func shadowed(rng *rand.Rand) float64 {
	total := rng.Float64()
	if total > 0.5 {
		rng := rand.New(rand.NewSource(2)) // want "shadows an outer rand generator"
		total += rng.Float64()
	}
	return total
}

func sharedInLoop(jobs []int) {
	rng := rand.New(rand.NewSource(1))
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() { // want "goroutine launched in a loop captures rand generator rng"
			defer wg.Done()
			_ = rng.Float64()
		}()
	}
	wg.Wait()
}

func sharedTwoGoroutines(done chan struct{}) {
	rng := rand.New(rand.NewSource(7))
	go func() {
		_ = rng.Int()
		done <- struct{}{}
	}()
	go func() { // want "captured by multiple goroutines"
		_ = rng.Int()
		done <- struct{}{}
	}()
	<-done
	<-done
}

func usedAfterLaunch(done chan struct{}) float64 {
	rng := rand.New(rand.NewSource(9))
	go func() {
		_ = rng.Float64()
		close(done)
	}()
	x := rng.Float64() // want "used here while also captured by a goroutine"
	<-done
	return x
}

func perGoroutineOK(done chan struct{}) {
	go func() { // ok: generator private to the goroutine
		rng := rand.New(rand.NewSource(3))
		_ = rng.Int()
		close(done)
	}()
	<-done
}

func launderedSeed() *rand.Rand {
	seed := time.Now().UnixNano()
	src := rand.NewSource(seed) // want "derives from time.Now"
	return rand.New(src)
}

func explicitSeedOK(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: caller-provided seed
}
