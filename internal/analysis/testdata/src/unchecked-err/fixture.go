package fixture

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func dropped(f *os.File) {
	f.Close() // want "call of f.Close drops its error"
}

func deferred(f *os.File) {
	defer f.Close() // want "defer of f.Close drops its error"
}

func inGoroutine(f *os.File, done chan struct{}) {
	go f.Sync() // want "go of f.Sync drops its error"
	<-done
}

func droppedFunc() {
	mayFail() // want "call of mayFail drops its error"
}

func checked(f *os.File) error {
	return f.Close() // ok: propagated
}

func deadStore() error {
	err := mayFail() // want "overwritten before it is read"
	err = mayFail()
	return err
}

func checkedBetween() error {
	err := mayFail()
	if err != nil {
		return err
	}
	err = mayFail()
	return err // ok: first error read before the overwrite
}

func explicitDiscard(f *os.File) {
	_ = f.Close() // ok: visible, deliberate discard
}

func allowlisted(b *strings.Builder, buf *bytes.Buffer) {
	fmt.Println("hi")           // ok: stdout printing
	fmt.Fprintf(os.Stderr, "x") // ok: stderr printing
	fmt.Fprintf(b, "x")         // ok: strings.Builder never fails
	fmt.Fprintln(buf, "y")      // ok: bytes.Buffer never fails
	b.WriteByte('z')            // ok: Builder method
	buf.WriteString("w")        // ok: Buffer method
	var sb strings.Builder
	sb.WriteString("v") // ok: value receiver resolves too
	_ = sb.String()
}

func noError() {
	plain() // ok: no error in signature
}

func mayFail() error { return errors.New("boom") }

func plain() {}
