// Package fixture exercises the guarded-field checker: struct fields
// protected by a mutex in one function and accessed lock-free in
// another, where the two accesses can run on different goroutines.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// Run launches the guarded writer, then writes the same field with no
// lock — racing with the goroutine it just started.
func Run(c *counter) {
	go c.loop()
	c.n = 7 // want "guarded by c.mu"
}

// loop is the goroutine body: its access is under the mutex.
func (c *counter) loop() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Stats reads lock-free from plain code while loop's goroutine writes
// under the lock.
func Stats(c *counter) int {
	return c.n // want "guarded by c.mu"
}

// Get is the correct pattern: every access under the lock.
func (c *counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// bump is only ever called with the lock held, so the entry-lockset
// fixpoint proves its access guarded: no finding.
func (c *counter) bump() {
	c.n++
}

func (c *counter) incrViaHelper() {
	c.mu.Lock()
	c.bump()
	c.mu.Unlock()
}

// Fresh builds a counter locally: it cannot be shared yet, so the
// lock-free accesses are fine.
func Fresh() int {
	var c counter
	c.n = 1
	return c.n
}
