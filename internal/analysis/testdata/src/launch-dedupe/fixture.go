// Package fixture triggers naked-goroutine, bare-panic-goroutine, and
// goroutine-lifecycle on ONE go statement. launch-dedupe's test pins
// that RunAll reports each check exactly once at that position — three
// findings total, never six.
package fixture

func doWork() error { return nil }

// StartLeaky launches a goroutine that is simultaneously unjoined
// (naked-goroutine: the spawner never receives from errs), able to
// panic with no recover (bare-panic-goroutine), and blocked forever on
// the send nobody reads (goroutine-lifecycle).
func StartLeaky() {
	errs := make(chan error)
	go func() {
		err := doWork()
		if err != nil {
			panic(err)
		}
		errs <- err
	}()
}
