// Package fixture exercises the confined-call checker: functions
// annotated //prionnvet:confined must be reachable from at most one
// goroutine-launch site, and never from a launch inside a loop.
package fixture

import "sync"

type engine struct{ state int }

// predict mutates shared scratch state.
//
//prionnvet:confined
func (e *engine) predict(x int) int {
	e.state++
	return e.state + x
}

//prionnvet:confined
func (e *engine) looped() int {
	e.state++
	return e.state
}

//prionnvet:confined
func (e *engine) single() int {
	e.state++
	return e.state
}

// runPredict is a wrapper layer: reachability must see through it.
func runPredict(e *engine) {
	e.predict(1)
}

func twoLaunchers(e *engine, wg *sync.WaitGroup) {
	wg.Add(2)
	go func() { // want "2 distinct goroutine-launch sites"
		defer wg.Done()
		runPredict(e)
	}()
	go func() { // want "2 distinct goroutine-launch sites"
		defer wg.Done()
		e.predict(2)
	}()
	wg.Wait()
}

func loopLauncher(e *engine, wg *sync.WaitGroup, n int) {
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() { // want "launched in a loop"
			defer wg.Done()
			e.looped()
		}()
	}
	wg.Wait()
}

func oneLauncher(e *engine, done chan struct{}) {
	go func() { // ok: a single launch site honors the contract
		e.single()
		close(done)
	}()
}
