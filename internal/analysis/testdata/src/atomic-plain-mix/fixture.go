// Package fixture exercises the atomic-plain-mix checker: a variable
// accessed through sync/atomic must not also be touched plainly.
package fixture

import "sync/atomic"

type counter struct {
	hits int64
	safe int64
}

func (c *counter) record() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return c.hits // want "accessed atomically"
}

func (c *counter) reset() {
	c.hits = 0 // want "accessed atomically"
}

func (c *counter) okAtomic() int64 {
	atomic.AddInt64(&c.safe, 1)
	return atomic.LoadInt64(&c.safe)
}

var total int64

func bump() {
	atomic.AddInt64(&total, 1)
}

func plainTotal() int64 {
	return total // want "accessed atomically"
}

func init() {
	total = 0 // ok: init runs single-threaded
}

func newCounter() *counter {
	return &counter{hits: 0} // ok: construction before publication
}
