package fixture

import "strconv"

func chain(m map[string]int) string {
	a := 1
	b := a + 2
	s := strconv.Itoa(b)
	for k, v := range m {
		_ = k
		b = v
	}
	b += 3
	return s
}

func params(x int, ys []int) (out int) {
	for _, y := range ys {
		out += y * x
	}
	return out
}

func closure() int {
	total := 0
	add := func(d int) {
		total += d
	}
	add(2)
	return total
}
