// Package fixture exercises the ctx-propagation checker: a function
// holding a context must neither manufacture a fresh one nor call a
// wrapper that defaults to one.
package fixture

import "context"

func handler(ctx context.Context) error {
	work(context.Background()) // want "manufactures a fresh one"
	legacyRun()                // want "defaults to context.Background"
	return workCtx(ctx)        // ok: chain intact
}

func handler2(ctx context.Context) {
	_ = context.TODO() // want "manufactures a fresh one"
	deepRun()          // want "defaults to context.Background"
}

// legacyRun has no ctx parameter of its own: manufacturing one here is
// fine — only ctx-holding callers calling it break an existing chain.
func legacyRun() {
	work(context.Background())
}

// deepRun reaches Background two hops down: the fact propagates.
func deepRun() {
	legacyRun()
}

// forwarder hands its ctx onward at every call: clean.
func forwarder(ctx context.Context) error {
	work(ctx)
	return workCtx(ctx)
}

func work(ctx context.Context) {}

func workCtx(ctx context.Context) error {
	_ = ctx.Err()
	return nil
}
