// Package fixture exercises the interprocedural engine itself
// (callgraph_test.go pins edge resolution, launch sites, bottom-up
// propagation, and cross-function taint). It is not a checker fixture.
package fixture

type greeter interface{ greet() string }

type english struct{}

func (english) greet() string { return "hello" }

type terse struct{}

func (terse) greet() string { return "hi" }

func helper() int { return 1 }

func caller() int { return helper() }

type thing struct{ n int }

func (t *thing) method() int { return t.n }

func callsMethod(t *thing) int { return t.method() }

func callsInterface(g greeter) string { return g.greet() }

func funcValue() int {
	f := helper
	return f()
}

func unresolved(f func() int) int { return f() }

func launches(done chan struct{}) {
	go func() { close(done) }()
	for i := 0; i < 3; i++ {
		go helper()
	}
}

func source() int { return 42 }

func wrap() int { return source() }

func wrapNamed() (n int) {
	n = source()
	return
}

func taintUser() int {
	v := wrap()
	return v + 1
}

func namedUser() int {
	v := wrapNamed()
	return v
}

func cleanUser() int {
	v := helper()
	return v
}
