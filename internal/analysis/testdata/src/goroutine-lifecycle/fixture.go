// Package fixture exercises the goroutine-lifecycle checker: launches
// whose goroutine can never terminate.
package fixture

import "context"

var work = make(chan int, 8)

func handle(int)    {}
func doWork() error { return nil }

// StartDaemon launches a for/select loop with no way out: no stop
// case, no return, no break. The goroutine outlives everything.
func StartDaemon() {
	go func() { // want "for/select loop with no termination case"
		for {
			select {
			case v := <-work:
				handle(v)
			}
		}
	}()
}

// StartWithStop has a struct{} stop-channel case: fine.
func StartWithStop(stop chan struct{}) {
	go func() {
		for {
			select {
			case v := <-work:
				handle(v)
			case <-stop:
				return
			}
		}
	}()
}

// StartWithCtx has a ctx.Done() case: fine.
func StartWithCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case v := <-work:
				handle(v)
			case <-ctx.Done():
				return
			}
		}
	}()
}

// Orphaned sends on an unbuffered local channel nobody ever reads:
// the goroutine parks on the send forever.
func Orphaned() {
	errs := make(chan error)
	go func() { // want "sends on unbuffered channel errs"
		errs <- doWork()
	}()
}

// OrphanedRecv receives from an unbuffered local channel nobody ever
// sends on or closes.
func OrphanedRecv() {
	done := make(chan struct{})
	go func() { // want "receives from unbuffered channel done"
		<-done
	}()
}

// Joined has the counterpart receive on the spawner side: fine.
func Joined() error {
	errs := make(chan error)
	go func() {
		errs <- doWork()
	}()
	return <-errs
}

// Buffered sends never block up to capacity: out of scope.
func Buffered() {
	errs := make(chan error, 1)
	go func() {
		errs <- doWork()
	}()
}
