// Package fixture exercises the waitgroup-misuse checker: the three
// WaitGroup protocol violations (Add after launch, skippable Done,
// Wait under a worker-side lock).
package fixture

import "sync"

func work() {}

func mayBoom() {
	panic("boom")
}

// AddInside increments the counter inside the goroutine: Wait can run
// first, see zero, and return while work is in flight.
func AddInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "inside the launched goroutine"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// DoneSkipped returns before the non-deferred Done on one path: the
// counter stays high and Wait blocks forever.
func DoneSkipped(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		it := it
		go func() {
			if it < 0 {
				return
			}
			work()
			wg.Done() // want "not deferred"
		}()
	}
	wg.Wait()
}

// DonePanic calls a panicking helper before the non-deferred Done.
func DonePanic() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		mayBoom()
		wg.Done() // want "can panic"
	}()
	wg.Wait()
}

type pool struct {
	mu sync.Mutex
	wg sync.WaitGroup
	n  int
}

// Flush waits while holding the mutex every worker needs to finish.
func (p *pool) Flush() {
	p.wg.Add(1)
	go p.worker()
	p.mu.Lock()
	p.wg.Wait() // want "held"
	p.mu.Unlock()
}

func (p *pool) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}

// Proper is the correct protocol end to end: no findings.
func Proper(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}
