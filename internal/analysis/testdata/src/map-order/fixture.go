package fixture

import (
	"fmt"
	"os"
	"sort"
)

func appendUnsorted(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want "append of map-ranged value"
	}
	return out
}

func collectThenSort(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: keys sorted below
	}
	sort.Strings(keys)
	return keys
}

func writeUnsorted(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stdout, "%s=%d\n", k, v) // want "emits a map-ranged value"
	}
}

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "accumulation of map-ranged value"
	}
	return sum
}

func intAccumOK(m map[string]string) int {
	n := 0
	for _, v := range m {
		n += len(v) // ok: integer sums are exact and commutative
	}
	return n
}

func sendUnsorted(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want "send of map-ranged value"
	}
}

func launderedAppend(m map[string]float64) []string {
	var rows []string
	for k, v := range m {
		row := fmt.Sprintf("%s,%g", k, v)
		rows = append(rows, row) // want "append of map-ranged value"
	}
	return rows
}

func sliceRangeOK(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v // ok: slice order is deterministic
	}
	return sum
}
