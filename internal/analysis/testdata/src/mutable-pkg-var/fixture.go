package fixture

import (
	"sync"
	"sync/atomic"
)

var counter int

var table = map[string]int{}

var limits = []int{1, 2, 3}

var mu sync.Mutex

var guarded = map[string]int{}

var hits atomic.Int64

func bump() {
	counter++ // want "writes package-level var counter"
}

func assign(n int) {
	counter = n // want "writes package-level var counter"
}

func insert(k string) {
	table[k] = 1 // want "writes package-level var table"
}

func elem(i, v int) {
	limits[i] = v // want "writes package-level var limits"
}

func insertGuarded(k string) {
	mu.Lock()
	defer mu.Unlock()
	guarded[k] = 1 // ok: lock acquired in this function
}

func atomicBump() {
	hits.Add(1) // ok: atomic type
}

func localShadow() {
	counter := 0 // ok: local variable shadows the package var
	counter++
	_ = counter
}

func readOnly() int {
	return counter + limits[0] // ok: reads are not flagged
}

func init() {
	counter = 1 // ok: init runs single-goroutine before main
}
