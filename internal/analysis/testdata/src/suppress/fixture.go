package fixture

import "math/rand"

var hits int

func bump() {
	hits++ //prionnvet:ignore mutable-pkg-var -- fixture: single-goroutine tool state
}

func roll() int {
	//prionnvet:ignore unseeded-rand -- fixture: standalone directive covers the next line
	return rand.Intn(6)
}

func compare(a, b float64) bool {
	return a == b //prionnvet:ignore all -- fixture: blanket suppression
}

func multi(f func() error) {
	//prionnvet:ignore unchecked-err,naked-goroutine -- fixture: comma-separated list
	go f()
}
