package fixture

import "sync"

func naked() {
	go work() // want "no join"
}

func nakedClosure(n int) {
	go func() { // want "no join"
		work()
	}()
	_ = n
}

func waitGroupJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // ok: wg.Wait below
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func channelJoined() {
	done := make(chan struct{})
	go func() { // ok: received below
		work()
		close(done)
	}()
	<-done
}

func rangeJoined(results chan int) {
	go func() { // ok: range over channel below
		results <- 1
		close(results)
	}()
	for range results {
	}
}

func selectJoined(done chan struct{}, stop chan struct{}) {
	go func() { // ok: select below
		close(done)
	}()
	select {
	case <-done:
	case <-stop:
	}
}

func callerJoins(wg *sync.WaitGroup) {
	go func() { // ok: WaitGroup parameter; the caller Waits
		defer wg.Done()
		work()
	}()
}

func returnsChannel() chan int {
	ch := make(chan int)
	go func() { // ok: channel returned; the caller receives
		ch <- 1
		close(ch)
	}()
	return ch
}

func chanParam(out chan<- int) {
	go func() { // ok: channel parameter; the caller receives
		out <- 1
	}()
}

func work() {}
