package analysis

import (
	"go/ast"
	"go/types"
)

// CtxPropagation flags functions that break an established context
// chain. The CLI→experiments→sched plumbing added in PR 3 only delivers
// cancellation if every hop forwards its ctx parameter; the two ways a
// hop silently breaks the chain are (a) manufacturing a fresh context
// via context.Background()/context.TODO() while already holding one,
// and (b) calling a convenience wrapper that defaults to Background
// internally (Run() instead of RunCtx(ctx)). Case (b) is inherently
// interprocedural: the call graph propagates "defaults to Background"
// bottom-up, stopping at any call edge that hands a context onward.
type CtxPropagation struct{}

// Name implements Checker.
func (CtxPropagation) Name() string { return "ctx-propagation" }

// Doc implements Checker.
func (CtxPropagation) Doc() string {
	return "function holding a ctx must not call context.Background/TODO or a callee that defaults to one"
}

// Run implements Checker.
func (CtxPropagation) Run(p *Pass) []Finding {
	g := p.CallGraph()

	// manufactures[n]: executing n (with no context handed to it) creates
	// a fresh context. Base: a direct Background/TODO call in the body.
	// Propagation: calling a manufacturer without passing a ctx onward.
	manufactures := map[*CGNode]bool{}
	for _, n := range g.Nodes {
		inspectOwn(n.Body(), func(x ast.Node) {
			if call, ok := x.(*ast.CallExpr); ok && isCtxManufacture(p, call) {
				manufactures[n] = true
			}
		})
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if manufactures[n] {
				continue
			}
			for _, e := range g.EdgesFrom(n) {
				if e.Target != nil && manufactures[e.Target] && !passesCtx(p, e.Site) {
					manufactures[n] = true
					changed = true
					break
				}
			}
		}
	}

	var out []Finding
	for _, n := range g.Nodes {
		sig := nodeSignature(p, n)
		if sig == nil || !hasCtxParam(sig) {
			continue
		}
		name := g.NodeName(n)
		// (a) fresh context manufactured while holding one.
		inspectOwn(n.Body(), func(x ast.Node) {
			call, ok := x.(*ast.CallExpr)
			if !ok || !isCtxManufacture(p, call) {
				return
			}
			out = append(out, p.rangeFinding("ctx-propagation", call.Pos(), call.End(),
				"%s receives a context but manufactures a fresh one here; thread the ctx parameter through instead", name))
		})
		// (b) ctx dropped into a callee that defaults to Background.
		flaggedSite := map[*ast.CallExpr]bool{}
		for _, e := range g.EdgesFrom(n) {
			if e.Target == nil || !manufactures[e.Target] || passesCtx(p, e.Site) || flaggedSite[e.Site] {
				continue
			}
			flaggedSite[e.Site] = true
			callee := "the callee"
			if e.Callee != nil {
				callee = g.FuncName(e.Callee)
			} else if e.Target.Lit != nil {
				callee = g.NodeName(e.Target)
			}
			out = append(out, p.rangeFinding("ctx-propagation", e.Site.Pos(), e.Site.End(),
				"%s holds a context but calls %s, which defaults to context.Background(); pass the ctx through a ctx-accepting variant", name, callee))
		}
	}
	return out
}

// inspectOwn walks a function body without descending into nested
// function literals — those are separate call-graph nodes with their
// own facts.
func inspectOwn(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if x != nil {
			f(x)
		}
		return true
	})
}

// nodeSignature returns the node's function signature (declaration or
// literal), or nil when type information is missing.
func nodeSignature(p *Pass, n *CGNode) *types.Signature {
	if n.Fn != nil {
		sig, _ := n.Fn.Type().(*types.Signature)
		return sig
	}
	if tv, ok := p.Info.Types[n.Lit]; ok {
		sig, _ := tv.Type.(*types.Signature)
		return sig
	}
	return nil
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasCtxParam reports whether any parameter of sig is a context.Context.
func hasCtxParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isCtxType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isCtxManufacture reports a context.Background() or context.TODO() call.
func isCtxManufacture(p *Pass, call *ast.CallExpr) bool {
	pkg, name, ok := qualifiedCall(p.Info, call)
	return ok && pkg == "context" && (name == "Background" || name == "TODO")
}

// passesCtx reports whether any argument of the call is context-typed —
// the chain is intact through this edge.
func passesCtx(p *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := p.Info.Types[arg]; ok && isCtxType(tv.Type) {
			return true
		}
	}
	return false
}
