// Package analysis implements prionnvet, a stdlib-only static-analysis
// pass for the PRIONN reproduction. The paper's results hinge on seeded,
// numerically reproducible runs (§4's Cab tables are per-seed), so the
// checkers target the bug classes that silently break reproducibility in
// a Go codebase with hand-rolled parallel kernels: unseeded randomness,
// exact float comparison, dropped errors on persist/IO paths, unjoined
// goroutines, and unsynchronized package-level state.
//
// Checkers are pure go/ast + go/types passes (no external deps, matching
// go.mod). Findings can be suppressed at the site with a justification:
//
//	//prionnvet:ignore <check>[,<check>...] -- <reason>
//
// The comment silences the named checks (or "all") on its own line and
// on the line directly below it, so it works both as a trailing comment
// and as a standalone line above the flagged statement. The " -- "
// separator and a non-empty reason are mandatory: a directive without
// one still suppresses, but RunAll reports it as an "ignore-reason"
// meta-finding, so an unjustified suppression cannot pass the gate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a checker. The JSON shape is
// the tool's machine-readable contract (documented in README.md):
// start and end positions are both line/col and byte offsets so
// downstream tooling can slice sources without re-parsing, and Doc
// carries the producing checker's one-line description.
type Finding struct {
	Check     string `json:"check"`
	Doc       string `json:"doc,omitempty"`
	Message   string `json:"message"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Offset    int    `json:"offset"`
	EndLine   int    `json:"endLine"`
	EndCol    int    `json:"endCol"`
	EndOffset int    `json:"endOffset"`
	// Why carries the step-by-step derivation of interprocedural
	// findings — the lock-order-cycle acquisition chain, one
	// human-readable step per element. The CLI renders the steps as
	// indented "why:" lines under the finding; -json emits them as an
	// array (schemaVersion 2).
	Why []string `json:"why,omitempty"`
}

// String renders a finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// SchemaVersion is the version of the machine-readable report shape.
// Version 1 was a bare sorted array of findings; version 2 wraps the
// array in a Report envelope and adds the per-finding "why" chain
// (lock-order-cycle acquisition steps). Consumers should reject
// versions they do not know.
const SchemaVersion = 2

// Report is the -json envelope: the schema version stamp plus the
// sorted findings. Findings is never null — an empty run serializes as
// an empty array, keeping `jq '.findings | length'` total.
type Report struct {
	SchemaVersion int       `json:"schemaVersion"`
	Findings      []Finding `json:"findings"`
}

// NewReport wraps findings in the current-version envelope.
func NewReport(findings []Finding) Report {
	if findings == nil {
		findings = []Finding{}
	}
	return Report{SchemaVersion: SchemaVersion, Findings: findings}
}

// Pass bundles everything a checker needs about one type-checked package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Confined is the loader's registry of //prionnvet:confined
	// annotations: function objects (from this package or any
	// module-internal dependency the loader type-checked) whose calls
	// the confined-call checker gates. May be nil.
	Confined map[*types.Func]bool

	// funcs memoizes the dataflow analysis (see FuncInfos): every
	// checker running over the same Pass shares one def-use computation.
	funcs []*FuncInfo
	// cg memoizes the interprocedural call graph (see CallGraph).
	cg *CallGraph
	// lf memoizes the lockset analysis (see LockFacts).
	lf *LockFacts
}

func (p *Pass) finding(check string, pos token.Pos, format string, args ...any) Finding {
	return p.rangeFinding(check, pos, pos, format, args...)
}

// rangeFinding is finding with an explicit end position, for checkers
// that can point at a whole expression rather than a single token.
func (p *Pass) rangeFinding(check string, pos, end token.Pos, format string, args ...any) Finding {
	position := p.Fset.Position(pos)
	endPos := position
	if end.IsValid() && end != pos {
		endPos = p.Fset.Position(end)
	}
	return Finding{
		Check:     check,
		Message:   fmt.Sprintf(format, args...),
		File:      position.Filename,
		Line:      position.Line,
		Col:       position.Column,
		Offset:    position.Offset,
		EndLine:   endPos.Line,
		EndCol:    endPos.Column,
		EndOffset: endPos.Offset,
	}
}

// Checker is one analysis pass.
type Checker interface {
	// Name is the kebab-case identifier used in reports and in
	// //prionnvet:ignore comments.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	Run(p *Pass) []Finding
}

// All returns every registered checker in stable order.
func All() []Checker {
	return []Checker{
		UnseededRand{},
		FloatEq{},
		UncheckedErr{},
		NakedGoroutine{},
		BarePanicGoroutine{},
		LoopCapture{},
		MutablePkgVar{},
		MapOrder{},
		SeedFlow{},
		TimeDep{},
		NondetSelect{},
		CtxPropagation{},
		ArenaLeak{},
		LockHeldIO{},
		ConfinedCall{},
		AtomicPlainMix{},
		GuardedField{},
		LockOrderCycle{},
		GoroutineLifecycle{},
		WaitGroupMisuse{},
	}
}

// ByName returns the checker with the given name, or nil.
func ByName(name string) Checker {
	for _, c := range All() {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// RunAll runs the given checkers over a pass, drops suppressed findings,
// and returns the rest sorted by position. A nil checkers slice means
// All(). Independently of the checker subset, every //prionnvet:ignore
// directive with no " -- reason" yields an ignore-reason meta-finding:
// a suppression without a written justification is itself a gate
// violation, and it cannot suppress its own report.
func RunAll(p *Pass, checkers []Checker) []Finding {
	if checkers == nil {
		checkers = All()
	}
	dirs := collectDirectives(p)
	sup := suppressionsFrom(dirs)
	var out []Finding
	for _, c := range checkers {
		for _, f := range c.Run(p) {
			if sup.suppressed(f) {
				continue
			}
			f.Doc = c.Doc()
			out = append(out, f)
		}
	}
	for _, d := range dirs {
		if d.reason != "" {
			continue
		}
		out = append(out, Finding{
			Check:     "ignore-reason",
			Doc:       ignoreReasonDoc,
			Message:   fmt.Sprintf("suppression of %s has no justification; write //prionnvet:ignore %s -- <reason>", strings.Join(d.checks, ","), strings.Join(d.checks, ",")),
			File:      d.pos.Filename,
			Line:      d.pos.Line,
			Col:       d.pos.Column,
			Offset:    d.pos.Offset,
			EndLine:   d.pos.Line,
			EndCol:    d.pos.Column,
			EndOffset: d.pos.Offset,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		if out[i].Check != out[j].Check {
			return out[i].Check < out[j].Check
		}
		return out[i].Message < out[j].Message
	})
	// One finding per (position, check): several rules of one checker —
	// or interface fan-out visiting one call site repeatedly — may
	// derive the same diagnostic at the same spot (a launch flagged by
	// two lifecycle proofs, say). Distinct checks at one position are
	// all real; duplicates of one check are noise. The slice is sorted,
	// so duplicates are adjacent and the first (lexically smallest
	// message) witness is kept.
	dedup := out[:0]
	for _, f := range out {
		if n := len(dedup); n > 0 {
			prev := dedup[n-1]
			if prev.File == f.File && prev.Line == f.Line && prev.Col == f.Col && prev.Check == f.Check {
				continue
			}
		}
		dedup = append(dedup, f)
	}
	return dedup
}

// ignorePrefix is the suppression marker. The directive form is
//
//	//prionnvet:ignore check1,check2 -- reason
//
// with no space before "prionnvet" (matching the //go: directive
// convention). The " -- " separator divides the check list from the
// mandatory justification; a directive without one still suppresses
// (so legacy comments do not un-silence old findings in one step) but
// is reported by the ignore-reason meta-finding.
const ignorePrefix = "prionnvet:ignore"

// ignoreReasonDoc documents the meta-finding emitted by RunAll for
// directives missing a " -- reason" justification.
const ignoreReasonDoc = "every //prionnvet:ignore must carry a written justification after ' -- '"

// directive is one parsed //prionnvet:ignore comment.
type directive struct {
	checks []string       // named checks, or ["all"]
	reason string         // text after " -- ", "" when absent
	pos    token.Position // position of the comment itself
}

// collectDirectives parses every //prionnvet:ignore comment in the pass.
func collectDirectives(p *Pass) []directive {
	var dirs []directive
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				var reason string
				if head, tail, found := strings.Cut(rest, "--"); found {
					rest = strings.TrimSpace(head)
					reason = strings.TrimSpace(tail)
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					// Bare ignore with no check list: treat as "all" so a
					// malformed directive fails loudly in review, not
					// silently.
					fields = []string{"all"}
				}
				var checks []string
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						checks = append(checks, name)
					}
				}
				dirs = append(dirs, directive{
					checks: checks,
					reason: reason,
					pos:    p.Fset.Position(c.Pos()),
				})
			}
		}
	}
	return dirs
}

// suppressions maps file -> line -> set of suppressed check names.
// The special name "all" suppresses every check.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppressed(f Finding) bool {
	lines := s[f.File]
	if lines == nil {
		return false
	}
	// A directive covers its own line (trailing comment) and the next
	// line (standalone comment above the statement).
	for _, line := range []int{f.Line, f.Line - 1} {
		checks := lines[line]
		if checks == nil {
			continue
		}
		if checks["all"] || checks[f.Check] {
			return true
		}
	}
	return false
}

func suppressionsFrom(dirs []directive) suppressions {
	sup := suppressions{}
	for _, d := range dirs {
		lines := sup[d.pos.Filename]
		if lines == nil {
			lines = map[int]map[string]bool{}
			sup[d.pos.Filename] = lines
		}
		checks := lines[d.pos.Line]
		if checks == nil {
			checks = map[string]bool{}
			lines[d.pos.Line] = checks
		}
		for _, name := range d.checks {
			checks[name] = true
		}
	}
	return sup
}

// pkgNameOf resolves an identifier to the imported package it names, or
// nil. Used by checkers to recognize qualified references like rand.Intn
// regardless of import aliasing.
func pkgNameOf(info *types.Info, id *ast.Ident) *types.PkgName {
	if obj, ok := info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// qualifiedCall reports the package path and function name of a call to
// a package-level function (e.g. "math/rand", "Intn"), or ok=false.
func qualifiedCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn := pkgNameOf(info, id)
	if pn == nil {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
