// Package analysis implements prionnvet, a stdlib-only static-analysis
// pass for the PRIONN reproduction. The paper's results hinge on seeded,
// numerically reproducible runs (§4's Cab tables are per-seed), so the
// checkers target the bug classes that silently break reproducibility in
// a Go codebase with hand-rolled parallel kernels: unseeded randomness,
// exact float comparison, dropped errors on persist/IO paths, unjoined
// goroutines, and unsynchronized package-level state.
//
// Checkers are pure go/ast + go/types passes (no external deps, matching
// go.mod). Findings can be suppressed at the site with a justification:
//
//	//prionnvet:ignore <check>[,<check>...] <reason>
//
// The comment silences the named checks (or "all") on its own line and
// on the line directly below it, so it works both as a trailing comment
// and as a standalone line above the flagged statement.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a checker.
type Finding struct {
	Check   string `json:"check"`
	Message string `json:"message"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
}

// String renders a finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Pass bundles everything a checker needs about one type-checked package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// funcs memoizes the dataflow analysis (see FuncInfos): every
	// checker running over the same Pass shares one def-use computation.
	funcs []*FuncInfo
}

func (p *Pass) finding(check string, pos token.Pos, format string, args ...any) Finding {
	position := p.Fset.Position(pos)
	return Finding{
		Check:   check,
		Message: fmt.Sprintf(format, args...),
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
	}
}

// Checker is one analysis pass.
type Checker interface {
	// Name is the kebab-case identifier used in reports and in
	// //prionnvet:ignore comments.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	Run(p *Pass) []Finding
}

// All returns every registered checker in stable order.
func All() []Checker {
	return []Checker{
		UnseededRand{},
		FloatEq{},
		UncheckedErr{},
		NakedGoroutine{},
		BarePanicGoroutine{},
		LoopCapture{},
		MutablePkgVar{},
		MapOrder{},
		SeedFlow{},
		TimeDep{},
		NondetSelect{},
	}
}

// ByName returns the checker with the given name, or nil.
func ByName(name string) Checker {
	for _, c := range All() {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// RunAll runs the given checkers over a pass, drops suppressed findings,
// and returns the rest sorted by position. A nil checkers slice means
// All().
func RunAll(p *Pass, checkers []Checker) []Finding {
	if checkers == nil {
		checkers = All()
	}
	sup := collectSuppressions(p)
	var out []Finding
	for _, c := range checkers {
		for _, f := range c.Run(p) {
			if sup.suppressed(f) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Check < out[j].Check
	})
	return out
}

// ignorePrefix is the suppression marker. The directive form is
// "//prionnvet:ignore check1,check2 reason..." with no space before
// "prionnvet" (matching the //go: directive convention).
const ignorePrefix = "prionnvet:ignore"

// suppressions maps file -> line -> set of suppressed check names.
// The special name "all" suppresses every check.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppressed(f Finding) bool {
	lines := s[f.File]
	if lines == nil {
		return false
	}
	// A directive covers its own line (trailing comment) and the next
	// line (standalone comment above the statement).
	for _, line := range []int{f.Line, f.Line - 1} {
		checks := lines[line]
		if checks == nil {
			continue
		}
		if checks["all"] || checks[f.Check] {
			return true
		}
	}
	return false
}

func collectSuppressions(p *Pass) suppressions {
	sup := suppressions{}
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					// Bare ignore with no check list: treat as "all" so a
					// malformed directive fails loudly in review, not
					// silently.
					fields = []string{"all"}
				}
				pos := p.Fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[pos.Filename] = lines
				}
				checks := lines[pos.Line]
				if checks == nil {
					checks = map[string]bool{}
					lines[pos.Line] = checks
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						checks[name] = true
					}
				}
			}
		}
	}
	return sup
}

// pkgNameOf resolves an identifier to the imported package it names, or
// nil. Used by checkers to recognize qualified references like rand.Intn
// regardless of import aliasing.
func pkgNameOf(info *types.Info, id *ast.Ident) *types.PkgName {
	if obj, ok := info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// qualifiedCall reports the package path and function name of a call to
// a package-level function (e.g. "math/rand", "Intn"), or ok=false.
func qualifiedCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn := pkgNameOf(info, id)
	if pn == nil {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
