package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// GuardedField flags inconsistently guarded struct fields: a field of
// an in-package struct that owns a mutex, accessed under that (or any)
// lock in one place and with a provably empty lockset in another,
// where the two accesses are reachable from distinct concurrency
// origins (two different goroutine-launch sites, or a launch site and
// plain non-goroutine code). That is the classic lockset-race
// signature: the guarded access documents the author's intent that the
// field is shared, and the unguarded one can interleave with it on a
// schedule `go test -race` may never take.
//
// Precision filters keep this conservative: only fields reached
// through a receiver, parameter, package-level variable, or a local
// that is visibly captured by a goroutine count (a struct built and
// used locally cannot race); mutex/sync-typed fields are skipped (the
// lock itself is touched unlocked by design); accesses in init are
// pre-publication; at least one side of the pair must be a write; and
// the lockset is the engine's must-hold set, so a helper only ever
// called under the lock inherits the guard through the entry-lockset
// fixpoint instead of being misreported.
type GuardedField struct{}

// Name implements Checker.
func (GuardedField) Name() string { return "guarded-field" }

// Doc implements Checker.
func (GuardedField) Doc() string {
	return "field guarded by a mutex in one function must not be accessed lock-free in a concurrent one"
}

// fieldAccess is one read or write of a guardable struct field.
type fieldAccess struct {
	sel   *ast.SelectorExpr
	node  *CGNode
	write bool
	held  map[string]bool
}

// Run implements Checker.
func (c GuardedField) Run(p *Pass) []Finding {
	g := p.CallGraph()
	lf := p.LockFacts()

	owners := mutexOwningStructs(p)
	if len(owners) == 0 {
		return nil
	}

	// Locals captured by a goroutine launch (the value escapes into
	// concurrent code, so accesses through them can race).
	sharedLocal := map[*types.Var]bool{}
	for _, l := range g.Launches {
		ast.Inspect(l.Go, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok {
				if v, ok := p.Info.Uses[id].(*types.Var); ok && !v.IsField() {
					sharedLocal[v] = true
				}
			}
			return true
		})
	}

	// Collect accesses per canonical field key "Type.field".
	accesses := map[string][]fieldAccess{}
	var keys []string
	for _, n := range g.Nodes {
		if n.Fn != nil && n.Fn.Name() == "init" {
			continue // pre-publication writes cannot race
		}
		parents := parentMap(n.Body())
		inspectOwn(n.Body(), func(x ast.Node) {
			sel, ok := x.(*ast.SelectorExpr)
			if !ok {
				return
			}
			s, ok := p.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return
			}
			owner := namedRecvType(s.Recv())
			if owner == nil || !owners[owner.Obj()] {
				return
			}
			field, _ := s.Obj().(*types.Var)
			if field == nil || isSyncGuardType(field.Type()) {
				return
			}
			if !sharedBase(p, sel.X, sharedLocal) {
				return
			}
			write, skip := accessMode(p, parents, sel)
			if skip {
				return
			}
			key := owner.Obj().Name() + "." + field.Name()
			if _, seen := accesses[key]; !seen {
				keys = append(keys, key)
			}
			accesses[key] = append(accesses[key], fieldAccess{
				sel:   sel,
				node:  n,
				write: write,
				held:  lf.HeldAt(n, sel.Pos()),
			})
		})
	}

	origins := concurrencyOrigins(g)

	sort.Strings(keys)
	var out []Finding
	for _, key := range keys {
		var guarded, unguarded []fieldAccess
		for _, a := range accesses[key] {
			if len(a.held) > 0 {
				guarded = append(guarded, a)
			} else {
				unguarded = append(unguarded, a)
			}
		}
		if len(guarded) == 0 || len(unguarded) == 0 {
			continue
		}
		flagged := map[token.Pos]bool{}
		for _, u := range unguarded {
			for _, ga := range guarded {
				if !u.write && !ga.write {
					continue // read/read cannot race
				}
				if !distinctOrigins(origins[u.node], origins[ga.node]) {
					continue
				}
				if flagged[u.sel.Pos()] {
					break
				}
				flagged[u.sel.Pos()] = true
				guardName := lf.Display(sortedKeys(ga.held)[0])
				out = append(out, p.rangeFinding(c.Name(), u.sel.Pos(), u.sel.End(),
					"field %s is guarded by %s at %s but accessed here with no lock held; the two accesses are reachable from different goroutines",
					key, guardName, lf.shortPos(ga.sel.Pos())))
				break
			}
		}
	}
	return out
}

// mutexOwningStructs returns the package's named struct types that
// declare or embed a sync.Mutex/RWMutex — the only structs whose
// fields carry a guard convention worth enforcing.
func mutexOwningStructs(p *Pass) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if isMutexType(st.Field(i).Type()) {
				out[tn] = true
				break
			}
		}
	}
	return out
}

// isMutexType reports sync.Mutex or sync.RWMutex (not behind a
// pointer: an embedded or declared field).
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isSyncGuardType reports types from sync/sync/atomic — fields that
// are themselves synchronization primitives are accessed lock-free by
// design.
func isSyncGuardType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "sync" || path == "sync/atomic"
}

// namedRecvType unwraps a selection receiver to its named type.
func namedRecvType(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// sharedBase reports whether the base expression of a field selector
// can name shared state: its root identifier is a receiver/parameter,
// a package-level variable, or a local captured by a goroutine launch.
// Locally built values (constructors) cannot race and are excluded.
func sharedBase(p *Pass, base ast.Expr, sharedLocal map[*types.Var]bool) bool {
	for {
		switch x := ast.Unparen(base).(type) {
		case *ast.SelectorExpr:
			base = x.X
		case *ast.IndexExpr:
			base = x.X
		case *ast.StarExpr:
			base = x.X
		case *ast.Ident:
			v, ok := p.Info.Uses[x].(*types.Var)
			if !ok {
				return false
			}
			if v.Parent() == p.Pkg.Scope() || sharedLocal[v] {
				return true
			}
			fi := p.FuncInfoAt(x.Pos())
			return fi != nil && fi.ParamObjs[v]
		default:
			return false
		}
	}
}

// accessMode classifies one field occurrence: write (assignment
// target, ++/--, compound assign, address taken) or read. Addresses
// handed straight to a call are skipped — that is an escape
// (atomic-plain-mix and arena-leak territory), not a plain access.
func accessMode(p *Pass, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) (write, skip bool) {
	switch par := parents[sel].(type) {
	case *ast.AssignStmt:
		for _, lhs := range par.Lhs {
			if lhs == sel {
				return true, false
			}
		}
	case *ast.IncDecStmt:
		if par.X == sel {
			return true, false
		}
	case *ast.UnaryExpr:
		if par.Op == token.AND {
			if call, ok := parents[par].(*ast.CallExpr); ok {
				for _, arg := range call.Args {
					if arg == par {
						return false, true
					}
				}
			}
			return true, false
		}
	case *ast.SelectorExpr:
		// s.field.Method(): the field is the receiver, a read.
	}
	return false, false
}

// concurrencyOrigins labels every node with the concurrency contexts
// that can execute it: one origin per goroutine-launch site whose
// launched body reaches the node, plus origin -1 ("plain code") for
// nodes reachable from a non-launched entry point without crossing a
// go statement. Two accesses race only if their origin sets contain
// two distinct origins.
func concurrencyOrigins(g *CallGraph) map[*CGNode]map[int]bool {
	origins := map[*CGNode]map[int]bool{}
	mark := func(n *CGNode, o int) {
		if origins[n] == nil {
			origins[n] = map[int]bool{}
		}
		origins[n][o] = true
	}
	launchSite := map[*ast.CallExpr]bool{}
	launchedBody := map[*CGNode]bool{}
	for _, l := range g.Launches {
		launchSite[l.Go.Call] = true
		for _, e := range g.SiteEdges(l.Go.Call) {
			if e.Target != nil {
				launchedBody[e.Target] = true
			}
		}
	}
	// bfs walks forward through non-launch edges.
	bfs := func(start *CGNode, o int) {
		seen := map[*CGNode]bool{start: true}
		work := []*CGNode{start}
		for len(work) > 0 {
			n := work[len(work)-1]
			work = work[:len(work)-1]
			mark(n, o)
			for _, e := range g.EdgesFrom(n) {
				if e.Target == nil || launchSite[e.Site] || seen[e.Target] {
					continue
				}
				seen[e.Target] = true
				work = append(work, e.Target)
			}
		}
	}
	for i, l := range g.Launches {
		for _, e := range g.SiteEdges(l.Go.Call) {
			if e.Target != nil {
				bfs(e.Target, i)
			}
		}
	}
	for _, n := range g.Nodes {
		if !launchedBody[n] && n.Lit == nil {
			// Any declared, non-launched function is a potential entry
			// from plain (or external) code.
			bfs(n, -1)
		}
	}
	return origins
}

// distinctOrigins reports whether the two origin sets contain two
// different origins — the accesses can execute on two goroutines.
func distinctOrigins(a, b map[int]bool) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	for x := range a {
		for y := range b {
			if x != y {
				return true
			}
		}
	}
	return false
}
