package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts expectation substrings from fixture comments of the
// form `// want "some message fragment"`.
var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// loadFixture type-checks testdata/src/<name> as a standalone package
// (stdlib imports only, resolved from source).
func loadFixture(t *testing.T, name string) (*Loader, *Package) {
	t.Helper()
	loader, err := NewLoader("")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return loader, pkg
}

// collectWants returns the expected message fragments per line.
func collectWants(p *Pass) map[int][]string {
	wants := map[int][]string{}
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				line := p.Fset.Position(c.Pos()).Line
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					wants[line] = append(wants[line], m[1])
				}
			}
		}
	}
	return wants
}

// TestCheckerFixtures runs every checker against its golden fixture:
// each `// want` comment must match a finding on its line, and every
// finding must be anticipated by a want comment.
func TestCheckerFixtures(t *testing.T) {
	for _, c := range All() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			loader, pkg := loadFixture(t, c.Name())
			pass := pkg.Pass(loader.Fset)
			findings := RunAll(pass, []Checker{c})
			wants := collectWants(pass)

			if len(wants) == 0 {
				t.Fatalf("fixture for %s has no want comments", c.Name())
			}

			byLine := map[int][]Finding{}
			for _, f := range findings {
				if f.Check != c.Name() {
					t.Errorf("checker %s reported a %s finding", c.Name(), f.Check)
				}
				byLine[f.Line] = append(byLine[f.Line], f)
			}

			for line, frags := range wants {
				for _, frag := range frags {
					matched := false
					for _, f := range byLine[line] {
						if strings.Contains(f.Message, frag) {
							matched = true
							break
						}
					}
					if !matched {
						t.Errorf("line %d: want %q not reported; findings there: %v", line, frag, messages(byLine[line]))
					}
				}
			}

			for line, fs := range byLine {
				for _, f := range fs {
					matched := false
					for _, frag := range wants[line] {
						if strings.Contains(f.Message, frag) {
							matched = true
							break
						}
					}
					if !matched {
						t.Errorf("unexpected finding at line %d: %s", line, f.Message)
					}
				}
			}
		})
	}
}

func messages(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Message
	}
	return out
}

// TestSuppression checks that //prionnvet:ignore silences findings —
// and that the fixture genuinely triggers checkers when the filter is
// bypassed, so the test cannot rot into vacuity.
func TestSuppression(t *testing.T) {
	loader, pkg := loadFixture(t, "suppress")
	pass := pkg.Pass(loader.Fset)

	if got := RunAll(pass, nil); len(got) != 0 {
		t.Errorf("suppressed fixture reported %d finding(s): %v", len(got), got)
	}

	raw := 0
	for _, c := range All() {
		raw += len(c.Run(pass))
	}
	if raw < 4 {
		t.Errorf("raw checkers found only %d violation(s) in the suppress fixture; expected >= 4 (fixture rotted?)", raw)
	}
}

// TestIgnoreReasonMetaFinding pins the satellite contract: a directive
// without " -- reason" still suppresses the named check but yields an
// ignore-reason meta-finding — which no directive can silence.
func TestIgnoreReasonMetaFinding(t *testing.T) {
	loader, pkg := loadFixture(t, "ignore-reason")
	pass := pkg.Pass(loader.Fset)
	got := RunAll(pass, nil)
	if len(got) != 1 {
		t.Fatalf("RunAll = %v, want exactly one ignore-reason finding", got)
	}
	f := got[0]
	if f.Check != "ignore-reason" || f.Line != 7 {
		t.Errorf("finding = %+v, want ignore-reason at line 7", f)
	}
	if !strings.Contains(f.Message, "float-eq") {
		t.Errorf("message %q does not name the suppressed check", f.Message)
	}
	if f.Doc != ignoreReasonDoc {
		t.Errorf("doc = %q, want %q", f.Doc, ignoreReasonDoc)
	}
}

// TestSuppressionScope pins the directive's reach: its own line and the
// next line, nothing further.
func TestSuppressionScope(t *testing.T) {
	sup := suppressions{
		"f.go": {10: {"float-eq": true}, 20: {"all": true}},
	}
	cases := []struct {
		finding Finding
		want    bool
	}{
		{Finding{Check: "float-eq", File: "f.go", Line: 10}, true},
		{Finding{Check: "float-eq", File: "f.go", Line: 11}, true},
		{Finding{Check: "float-eq", File: "f.go", Line: 12}, false},
		{Finding{Check: "float-eq", File: "f.go", Line: 9}, false},
		{Finding{Check: "unchecked-err", File: "f.go", Line: 10}, false},
		{Finding{Check: "unchecked-err", File: "f.go", Line: 21}, true},
		{Finding{Check: "float-eq", File: "g.go", Line: 10}, false},
	}
	for i, tc := range cases {
		if got := sup.suppressed(tc.finding); got != tc.want {
			t.Errorf("case %d (%+v): suppressed = %v, want %v", i, tc.finding, got, tc.want)
		}
	}
}

// TestFindingString pins the report format scripts grep for.
func TestFindingString(t *testing.T) {
	f := Finding{Check: "float-eq", Message: "m", File: "a/b.go", Line: 3, Col: 7}
	if got, want := f.String(), "a/b.go:3:7: float-eq: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestLoaderModuleResolution loads a package from this repo through the
// module-aware path (prionn/... imports resolved by the loader itself).
func TestLoaderModuleResolution(t *testing.T) {
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if loader.ModulePath != "prionn" {
		t.Fatalf("module path = %q, want prionn", loader.ModulePath)
	}
	// internal/metrics has no intra-module imports; internal/ioaware
	// imports it, exercising ImportFrom's module branch.
	pkg, err := loader.LoadDir(filepath.Join("..", "ioaware"))
	if err != nil {
		t.Fatalf("LoadDir(internal/ioaware): %v", err)
	}
	if pkg.ImportPath != "prionn/internal/ioaware" {
		t.Errorf("import path = %q", pkg.ImportPath)
	}
	if pkg.Pkg.Scope().Lookup("SeriesAccuracy") == nil {
		t.Errorf("type info missing SeriesAccuracy")
	}
}

// TestLoaderConfinedRegistry pins the cross-package annotation path:
// loading internal/serve pulls internal/prionn through the loader's
// own ImportFrom, whose LoadDir scans //prionnvet:confined doc
// comments into the shared registry — so a pass over serve sees the
// Inference prediction methods declared in prionn.
func TestLoaderConfinedRegistry(t *testing.T) {
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("..", "serve"))
	if err != nil {
		t.Fatalf("LoadDir(internal/serve): %v", err)
	}
	pass := pkg.Pass(loader.Fset)
	got := map[string]bool{}
	for fn := range pass.Confined {
		got[fn.Name()] = true
	}
	for _, want := range []string{"PredictMapped", "Predict", "PredictOne"} {
		if !got[want] {
			t.Errorf("confined registry missing Inference.%s; has %v", want, got)
		}
	}
}

// TestByName covers lookup, including the failure path the CLI relies on
// for its -checks validation.
func TestByName(t *testing.T) {
	for _, c := range All() {
		got := ByName(c.Name())
		if got == nil || got.Name() != c.Name() {
			t.Errorf("ByName(%q) = %v", c.Name(), got)
		}
		if c.Doc() == "" {
			t.Errorf("checker %s has no doc line", c.Name())
		}
	}
	if ByName("no-such-check") != nil {
		t.Errorf("ByName(no-such-check) should be nil")
	}
}

func ExampleFinding_String() {
	f := Finding{Check: "unseeded-rand", Message: "example", File: "x.go", Line: 1, Col: 1}
	fmt.Println(f.String())
	// Output: x.go:1:1: unseeded-rand: example
}
