package analysis

import "strings"

// LockOrderCycle flags cycles in the package's lock-order graph
// (lockset.go): an edge L1→L2 is recorded whenever L2 is acquired —
// directly or through any chain of calls — while L1 is held, and a
// cycle means two lock-acquisition paths exist that take the same
// locks in opposite orders. Two goroutines interleaving those paths
// deadlock: each holds the lock the other needs. `go test -race`
// cannot see this (deadlocks are not data races, and the fatal
// schedule may never be taken under test); the static order graph
// catches it on every schedule.
//
// The finding is anchored at the acquisition completing the cycle and
// carries the full chain as why steps, one per edge, the same way
// lock-held-io explains reach-through-call findings.
type LockOrderCycle struct{}

// Name implements Checker.
func (LockOrderCycle) Name() string { return "lock-order-cycle" }

// Doc implements Checker.
func (LockOrderCycle) Doc() string {
	return "locks must be acquired in one consistent order; an order cycle is a potential deadlock"
}

// Run implements Checker.
func (c LockOrderCycle) Run(p *Pass) []Finding {
	lf := p.LockFacts()
	var out []Finding
	for _, cycle := range lf.OrderCycles() {
		names := []string{lf.Display(cycle[0].From)}
		why := make([]string, 0, len(cycle))
		for _, e := range cycle {
			names = append(names, lf.Display(e.To))
			why = append(why, e.Why)
		}
		f := p.rangeFinding(c.Name(), cycle[0].Pos, cycle[0].End,
			"lock-order cycle %s: concurrent callers taking these paths deadlock; pick one global acquisition order",
			strings.Join(names, " -> "))
		f.Why = why
		out = append(out, f)
	}
	return out
}
