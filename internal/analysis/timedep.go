package analysis

import (
	"go/ast"
	"go/types"
)

// TimeDep flags wall-clock values (time.Now / time.Since) that flow
// into data — return values, stored fields, collections, channel sends —
// rather than into logging. A timestamp in a log line is fine; a
// timestamp in a feature vector, a report row, or a persisted result
// makes two same-seed runs differ. The taint is tracked through local
// assignments with the dataflow engine, so laundering through
// intermediate variables is caught, while passing the value to a plain
// call statement (logging/progress reporting) is not flagged.
type TimeDep struct{}

func (TimeDep) Name() string { return "time-dep" }
func (TimeDep) Doc() string {
	return "flags time.Now/Since values flowing into returns, stored data, or sends instead of logging"
}

func (c TimeDep) Run(p *Pass) []Finding {
	var out []Finding
	for _, fi := range p.FuncInfos() {
		out = append(out, c.checkFunc(fi)...)
	}
	return out
}

// timeScalar reports whether t can carry a wall-clock reading as a
// value: numeric basics, time.Time, time.Duration. Restricting the
// taint to scalars keeps container writes (the sink) from themselves
// becoming tainted sources.
func timeScalar(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "time" &&
			(obj.Name() == "Time" || obj.Name() == "Duration") {
			return true
		}
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsNumeric|types.IsString) != 0
}

// isClockCall reports whether call reads the wall clock.
func isClockCall(info *types.Info, call *ast.CallExpr) bool {
	if pkg, name, ok := qualifiedCall(info, call); ok {
		return pkg == "time" && (name == "Now" || name == "Since")
	}
	// Method chains rooted at a clock call: time.Now().UnixNano(),
	// time.Since(t0).Seconds().
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if inner, ok := sel.X.(*ast.CallExpr); ok {
			return isClockCall(info, inner)
		}
	}
	return false
}

func (c TimeDep) checkFunc(fi *FuncInfo) []Finding {
	p := fi.Pass

	// clockFlow: does any part of e derive from a clock read through
	// local assignments? Used for append arguments, where the tainted
	// scalar may sit inside a composite literal or Sprintf call.
	clockFlow := func(e ast.Expr) bool {
		return fi.FlowsFrom(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			return ok && isClockCall(p.Info, call)
		})
	}
	// clockDerived: same, but gated to scalar-typed expressions so that
	// container-typed intermediates do not double-report.
	clockDerived := func(e ast.Expr) bool {
		return timeScalar(p.Info.TypeOf(e)) && clockFlow(e)
	}

	// Call statements (ExprStmt / go / defer) are logging or progress
	// reporting: exempt their whole subtree from sink detection.
	exempt := map[ast.Node]bool{}
	markExempt := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			exempt[m] = true
			return true
		})
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if _, ok := s.X.(*ast.CallExpr); ok {
				markExempt(s)
				return false
			}
		case *ast.GoStmt, *ast.DeferStmt:
			// The call expression itself is the statement; launching or
			// deferring a log call is still logging. Bodies of function
			// literals inside are separate statements and re-inspected.
		}
		return true
	})

	var out []Finding
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if exempt[n] {
			return false
		}
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if clockDerived(res) {
					out = append(out, p.finding(c.Name(), res.Pos(),
						"wall-clock value returned as data; same-seed runs will differ — return a seeded/deterministic quantity, or suppress if this is an intentional timing measurement"))
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				rhs := s.Rhs[0]
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				}
				if !storesIntoData(fi, lhs) {
					continue
				}
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(p.Info, call) {
					for _, a := range call.Args[1:] {
						if clockFlow(a) {
							out = append(out, p.finding(c.Name(), s.Pos(),
								"wall-clock value appended to %s; timing leaks into persisted data — keep timestamps in logs, or suppress if this is an intentional timing measurement", storeDesc(lhs)))
							break
						}
					}
					continue
				}
				if !clockDerived(rhs) {
					continue
				}
				out = append(out, p.finding(c.Name(), s.Pos(),
					"wall-clock value stored into %s; timing leaks into persisted data — keep timestamps in logs, or suppress if this is an intentional timing measurement", storeDesc(lhs)))
			}
		case *ast.SendStmt:
			if clockDerived(s.Value) {
				out = append(out, p.finding(c.Name(), s.Pos(),
					"wall-clock value sent on a channel as data; downstream aggregation becomes timing-dependent"))
			}
		case *ast.CallExpr:
			// append(dst, ...tainted) assigned somewhere reaches here via
			// the AssignStmt case only if the whole append is the RHS; a
			// clock value as a non-append call argument is a plain call
			// and intentionally not flagged (conservative: could be a
			// formatting/logging helper).
		}
		return true
	})
	return out
}

// storesIntoData reports whether assigning to lhs persists the value
// beyond a plain local scalar: a field selector, an index expression,
// or a local of composite type (e.g. the slice result of append).
// Writing a clock value to a plain scalar local is only an intermediate
// step — the flow query finds it again at the real sink — so flagging
// here would double-report.
func storesIntoData(fi *FuncInfo, lhs ast.Expr) bool {
	switch l := lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.Ident:
		obj, ok := fi.Pass.Info.ObjectOf(l).(*types.Var)
		if !ok || obj == nil {
			return false
		}
		if !fi.isLocal(obj) {
			return true // package-level or captured outer variable
		}
		// Local of composite type: append targets, maps, structs.
		if timeScalar(obj.Type()) {
			return false
		}
		switch obj.Type().Underlying().(type) {
		case *types.Slice, *types.Map, *types.Struct, *types.Array, *types.Chan:
			return true
		}
	}
	return false
}

// storeDesc names the store target for the diagnostic.
func storeDesc(lhs ast.Expr) string {
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		return "field " + l.Sel.Name
	case *ast.IndexExpr:
		return "an indexed element"
	case *ast.Ident:
		return l.Name
	}
	return "a variable"
}
