package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// BarePanicGoroutine flags detached goroutines with no recover guard in
// non-test code. A goroutine that has no join in its spawning function
// (and does not hand its join to the caller) outlives the spawner; if it
// then panics there is no frame left to contain it and the whole process
// dies — in this codebase that means the experiments harness or the
// online-retraining deployment, not just one figure. Such a goroutine
// must open with a deferred recover (the supervised-worker pattern
// tensor.ParallelFor uses) or be joined.
//
// The checker is deliberately conservative: launches it cannot see into
// (methods, functions from other packages) are skipped rather than
// guessed at, and test files are exempt — a test goroutine crashing the
// test binary is the desired loud failure.
type BarePanicGoroutine struct{}

func (BarePanicGoroutine) Name() string { return "bare-panic-goroutine" }
func (BarePanicGoroutine) Doc() string {
	return "flags unjoined goroutines without a deferred recover in non-test code"
}

func (c BarePanicGoroutine) Run(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Files {
		if isTestFile(p, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			joined := hasJoin(p, body)
			for _, g := range directGoStmts(body) {
				if joined || joinEscapes(p, g) {
					// Bounded by a join: the spawner (or its caller)
					// outlives the goroutine; naked-goroutine owns the
					// unjoined-lifetime complaint.
					continue
				}
				gb, known := launchedBody(p, g)
				if !known {
					continue // can't see the launched code; don't guess
				}
				if hasRecoverGuard(p, gb) {
					continue
				}
				out = append(out, p.finding(c.Name(), g.Pos(),
					"goroutine outlives its spawner and has no deferred recover; a panic here kills the whole process"))
			}
			return true
		})
	}
	return out
}

// isTestFile reports whether the file is a _test.go file.
func isTestFile(p *Pass, file *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(file.Pos()).Filename, "_test.go")
}

// launchedBody resolves the body of the function a go statement
// launches: a function literal directly, or a same-package function
// declaration. known is false when the target cannot be resolved to
// source in this package (method value, other package, interface call).
func launchedBody(p *Pass, g *ast.GoStmt) (*ast.BlockStmt, bool) {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body, true
	case *ast.Ident:
		fn, ok := p.Info.Uses[fun].(*types.Func)
		if !ok {
			return nil, false
		}
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil {
					continue
				}
				if p.Info.Defs[fd.Name] == fn {
					return fd.Body, fd.Body != nil
				}
			}
		}
	}
	return nil, false
}

// hasRecoverGuard reports whether the launched function body installs a
// deferred recover at some point along its top frame. Defers inside
// nested (non-deferred) function literals guard those literals' frames,
// not the goroutine's, and do not count.
func hasRecoverGuard(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.DeferStmt:
			if callsRecover(p, s.Call) {
				found = true
			}
			return false
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return found
}

// callsRecover reports whether the deferred call is, or visibly
// contains, a call to the recover builtin.
func callsRecover(p *Pass, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := c.Fun.(*ast.Ident); ok {
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
				found = true
			}
		}
		return !found
	})
	return found
}
