package analysis

// Interprocedural layer: a memoized package-level call graph built on
// the SSA-lite def-use engine (dataflow.go), plus cross-function taint.
// The graph has one node per function *body* — top-level declarations
// and the function literals nested inside them — because goroutine
// launches (`go func() {...}()`) and deferred closures are bodies of
// their own: reachability questions ("which launch sites reach this
// confined API?", "does anything under this lock block?") need literal
// granularity even though literals share their host declaration's
// def-use index.
//
// Resolution is deliberately conservative in the no-false-positive
// direction: direct calls and concrete method calls resolve exactly;
// interface method calls fan out to every in-package concrete method
// implementing the interface; calls through local function-valued
// variables resolve through the variable's def-use chain to every
// function value ever assigned to it; anything else (parameters,
// struct fields, channel-received values) yields an explicitly
// Unresolved edge so checkers can choose to under-approximate rather
// than guess.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// EdgeKind classifies how a call site resolved to its callee.
type EdgeKind int

const (
	// EdgeDirect is a plain call of a declared function (same package
	// or imported).
	EdgeDirect EdgeKind = iota
	// EdgeMethod is a method call with a concrete (non-interface)
	// receiver.
	EdgeMethod
	// EdgeInterface is a method call through an interface, resolved
	// conservatively: one edge per in-package concrete method that
	// implements the interface (or a single external edge to the
	// interface method itself when no implementer is in the package).
	EdgeInterface
	// EdgeFuncValue is a call of a local function-valued variable,
	// resolved through its def-use chain to the values assigned to it.
	EdgeFuncValue
	// EdgeLiteral is an immediately invoked function literal.
	EdgeLiteral
)

// CGNode is one function body in the call graph: a top-level
// declaration or a function literal nested inside one.
type CGNode struct {
	// Fn is the declared object; nil for function literals.
	Fn *types.Func
	// Lit is non-nil for literal nodes.
	Lit *ast.FuncLit
	// Decl is the hosting top-level declaration (for literals, the
	// declaration whose body lexically contains them).
	Decl *ast.FuncDecl
}

// Body returns the node's executable body.
func (n *CGNode) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// CGEdge is one resolved call site.
type CGEdge struct {
	Caller *CGNode
	Site   *ast.CallExpr
	Kind   EdgeKind
	// Callee is the resolved callee object (declared function or
	// method, possibly from another package). Nil when the target is a
	// function literal or the site is Unresolved.
	Callee *types.Func
	// Target is the in-package body of the callee; nil for external
	// callees and unresolved sites.
	Target *CGNode
	// Unresolved marks func-value calls whose def-use chain produced
	// no static callee (parameters, struct fields, channel receives).
	Unresolved bool
}

// Launch is one goroutine-launch site.
type Launch struct {
	Go *ast.GoStmt
	// Node is the function body containing the go statement.
	Node *CGNode
	// InLoop reports whether the launch is lexically inside a
	// for/range statement of the same body — one go statement, many
	// goroutines.
	InLoop bool
}

// CallGraph is the package-level call graph, memoized on the Pass.
type CallGraph struct {
	pass     *Pass
	Nodes    []*CGNode
	Launches []Launch

	nodeByAST map[ast.Node]*CGNode
	nodeByFn  map[*types.Func]*CGNode
	out       map[*CGNode][]*CGEdge
	in        map[*CGNode][]*CGEdge
	sites     map[*types.Func][]*CGEdge
	bySite    map[*ast.CallExpr][]*CGEdge
}

// CallGraph returns the package call graph, building it on first use.
// Checkers sharing a Pass share one graph.
func (p *Pass) CallGraph() *CallGraph {
	if p.cg != nil {
		return p.cg
	}
	g := &CallGraph{
		pass:      p,
		nodeByAST: map[ast.Node]*CGNode{},
		nodeByFn:  map[*types.Func]*CGNode{},
		out:       map[*CGNode][]*CGEdge{},
		in:        map[*CGNode][]*CGEdge{},
		sites:     map[*types.Func][]*CGEdge{},
		bySite:    map[*ast.CallExpr][]*CGEdge{},
	}
	// Register every declaration first so same-package edges resolve to
	// their targets regardless of file order.
	var decls []*ast.FuncDecl
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			node := &CGNode{Decl: fn}
			if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
				node.Fn = obj
				g.nodeByFn[obj] = node
			}
			g.nodeByAST[fn] = node
			g.Nodes = append(g.Nodes, node)
			decls = append(decls, fn)
		}
	}
	for _, fn := range decls {
		g.collect(g.nodeByAST[fn], fn.Body, false)
	}
	p.cg = g
	return g
}

// ensureLit registers (or returns) the node for a function literal
// hosted by decl.
func (g *CallGraph) ensureLit(lit *ast.FuncLit, decl *ast.FuncDecl) *CGNode {
	if n, ok := g.nodeByAST[lit]; ok {
		return n
	}
	n := &CGNode{Lit: lit, Decl: decl}
	g.nodeByAST[lit] = n
	g.Nodes = append(g.Nodes, n)
	return n
}

// collect walks one body, attributing call sites and launches to node
// and descending into nested literals as their own nodes. inLoop
// tracks lexical for/range nesting within the body.
func (g *CallGraph) collect(node *CGNode, n ast.Node, inLoop bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.FuncLit:
			child := g.ensureLit(s, node.Decl)
			g.collect(child, s.Body, false)
			return false
		case *ast.ForStmt:
			if s.Init != nil {
				g.collect(node, s.Init, inLoop)
			}
			if s.Cond != nil {
				g.collect(node, s.Cond, inLoop)
			}
			if s.Post != nil {
				g.collect(node, s.Post, inLoop)
			}
			g.collect(node, s.Body, true)
			return false
		case *ast.RangeStmt:
			g.collect(node, s.X, inLoop)
			g.collect(node, s.Body, true)
			return false
		case *ast.GoStmt:
			g.Launches = append(g.Launches, Launch{Go: s, Node: node, InLoop: inLoop})
			// Fall through: the launched CallExpr is resolved like any
			// other call site when Inspect visits it.
		case *ast.CallExpr:
			g.addEdges(node, s)
		}
		return true
	})
}

// addEdges resolves one call site and records its edges.
func (g *CallGraph) addEdges(caller *CGNode, call *ast.CallExpr) {
	p := g.pass
	fun := ast.Unparen(call.Fun)
	// Peel generic instantiations: f[T](x) calls f.
	for {
		if ix, ok := fun.(*ast.IndexExpr); ok {
			fun = ast.Unparen(ix.X)
			continue
		}
		if ix, ok := fun.(*ast.IndexListExpr); ok {
			fun = ast.Unparen(ix.X)
			continue
		}
		break
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := p.Info.Uses[f].(type) {
		case *types.Func:
			g.edge(caller, call, EdgeDirect, obj, nil)
		case *types.Var:
			g.funcValueEdges(caller, call, obj)
		}
		// Builtins and type conversions: no edge.
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[f]; ok {
			fn, okF := sel.Obj().(*types.Func)
			if !okF {
				// Func-typed struct field: statically opaque.
				g.edgeUnresolved(caller, call)
				return
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
				impls := g.implementers(iface, fn.Name())
				if len(impls) == 0 {
					g.edge(caller, call, EdgeInterface, fn, nil)
				}
				for _, m := range impls {
					g.edge(caller, call, EdgeInterface, m, nil)
				}
				return
			}
			g.edge(caller, call, EdgeMethod, fn, nil)
			return
		}
		// Qualified call (pkg.F) or method expression (T.M).
		if obj, ok := p.Info.Uses[f.Sel].(*types.Func); ok {
			g.edge(caller, call, EdgeDirect, obj, nil)
		}
	case *ast.FuncLit:
		g.edge(caller, call, EdgeLiteral, nil, g.ensureLit(f, caller.Decl))
	}
}

// funcValueEdges resolves a call of a local function-valued variable
// through its def-use chain.
func (g *CallGraph) funcValueEdges(caller *CGNode, call *ast.CallExpr, v *types.Var) {
	p := g.pass
	fi := p.FuncInfoAt(call.Pos())
	if fi == nil || !fi.isLocal(v) {
		g.edgeUnresolved(caller, call)
		return
	}
	resolved, opaque := false, false
	for _, d := range fi.Defs[v] {
		if d.RHS == nil {
			// Parameter or zero def: the value comes from a caller the
			// graph cannot see.
			opaque = true
			continue
		}
		switch rhs := ast.Unparen(d.RHS).(type) {
		case *ast.Ident:
			if fn, ok := p.Info.Uses[rhs].(*types.Func); ok {
				g.edge(caller, call, EdgeFuncValue, fn, nil)
				resolved = true
			} else {
				opaque = true
			}
		case *ast.SelectorExpr:
			var fn *types.Func
			if sel, ok := p.Info.Selections[rhs]; ok {
				fn, _ = sel.Obj().(*types.Func)
			} else if o, ok := p.Info.Uses[rhs.Sel].(*types.Func); ok {
				fn = o
			}
			if fn != nil {
				g.edge(caller, call, EdgeFuncValue, fn, nil)
				resolved = true
			} else {
				opaque = true
			}
		case *ast.FuncLit:
			g.edge(caller, call, EdgeFuncValue, nil, g.ensureLit(rhs, fi.Decl))
			resolved = true
		default:
			opaque = true
		}
	}
	if !resolved || opaque {
		g.edgeUnresolved(caller, call)
	}
}

// implementers returns the in-package concrete methods named name whose
// receiver type implements iface. Package scope names are sorted, so
// the fan-out order is deterministic.
func (g *CallGraph) implementers(iface *types.Interface, name string) []*types.Func {
	if iface == nil {
		return nil
	}
	scope := g.pass.Pkg.Scope()
	var out []*types.Func
	for _, nm := range scope.Names() {
		tn, ok := scope.Lookup(nm).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		var recv types.Type
		switch {
		case types.Implements(named, iface):
			recv = named
		case types.Implements(types.NewPointer(named), iface):
			recv = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, g.pass.Pkg, name)
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	return out
}

func (g *CallGraph) edge(caller *CGNode, call *ast.CallExpr, kind EdgeKind, callee *types.Func, target *CGNode) {
	if target == nil && callee != nil {
		target = g.nodeByFn[callee]
	}
	e := &CGEdge{Caller: caller, Site: call, Kind: kind, Callee: callee, Target: target}
	g.record(e)
}

func (g *CallGraph) edgeUnresolved(caller *CGNode, call *ast.CallExpr) {
	g.record(&CGEdge{Caller: caller, Site: call, Kind: EdgeFuncValue, Unresolved: true})
}

func (g *CallGraph) record(e *CGEdge) {
	g.out[e.Caller] = append(g.out[e.Caller], e)
	if e.Target != nil {
		g.in[e.Target] = append(g.in[e.Target], e)
	}
	if e.Callee != nil {
		g.sites[e.Callee] = append(g.sites[e.Callee], e)
	}
	g.bySite[e.Site] = append(g.bySite[e.Site], e)
}

// EdgesFrom returns the call sites inside n, in source order.
func (g *CallGraph) EdgesFrom(n *CGNode) []*CGEdge { return g.out[n] }

// EdgesTo returns the in-package call sites whose target is n.
func (g *CallGraph) EdgesTo(n *CGNode) []*CGEdge { return g.in[n] }

// CallSitesOf returns every edge resolving to the given callee object,
// in-package or external.
func (g *CallGraph) CallSitesOf(fn *types.Func) []*CGEdge { return g.sites[fn] }

// SiteEdges returns the edges recorded for one call expression (several
// for interface fan-out).
func (g *CallGraph) SiteEdges(call *ast.CallExpr) []*CGEdge { return g.bySite[call] }

// NodeOf returns the node for a FuncDecl or FuncLit, or nil.
func (g *CallGraph) NodeOf(n ast.Node) *CGNode { return g.nodeByAST[n] }

// DeclNode returns the node of a declared same-package function, or nil.
func (g *CallGraph) DeclNode(fn *types.Func) *CGNode { return g.nodeByFn[fn] }

// NodeAt returns the innermost node whose body contains pos, or nil.
func (g *CallGraph) NodeAt(pos token.Pos) *CGNode {
	var best *CGNode
	for _, n := range g.Nodes {
		b := n.Body()
		if b.Pos() <= pos && pos <= b.End() {
			if best == nil || (best.Body().Pos() <= b.Pos() && b.End() <= best.Body().End()) {
				best = n
			}
		}
	}
	return best
}

// NodeName renders a stable identifier for messages: "f", "(T).m", or
// "f·lit@line" for literals.
func (g *CallGraph) NodeName(n *CGNode) string {
	name := n.Decl.Name.Name
	if n.Decl.Recv != nil && len(n.Decl.Recv.List) > 0 {
		name = fmt.Sprintf("(%s).%s", types.ExprString(n.Decl.Recv.List[0].Type), name)
	}
	if n.Lit != nil {
		return fmt.Sprintf("%s·lit@%d", name, g.pass.Fset.Position(n.Lit.Pos()).Line)
	}
	return name
}

// FuncName renders a callee object for messages: "Type.Method" or
// "pkg.Func" for external functions, bare "Func" in-package.
func (g *CallGraph) FuncName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != g.pass.Pkg {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// ReachableFrom returns every node reachable from start through
// in-package edges, start included.
func (g *CallGraph) ReachableFrom(start *CGNode) map[*CGNode]bool {
	seen := map[*CGNode]bool{start: true}
	work := []*CGNode{start}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range g.out[n] {
			if e.Target != nil && !seen[e.Target] {
				seen[e.Target] = true
				work = append(work, e.Target)
			}
		}
	}
	return seen
}

// Propagate computes the least fixpoint of a bottom-up boolean fact:
// base gives each node's own contribution, and a node acquires the
// fact when any of its in-package callees holds it. This is how "does
// anything this function reaches do file IO?" style questions are
// answered without inlining.
func (g *CallGraph) Propagate(base func(*CGNode) bool) map[*CGNode]bool {
	fact := map[*CGNode]bool{}
	for _, n := range g.Nodes {
		if base(n) {
			fact[n] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if fact[n] {
				continue
			}
			for _, e := range g.out[n] {
				if e.Target != nil && fact[e.Target] {
					fact[n] = true
					changed = true
					break
				}
			}
		}
	}
	return fact
}

// returnExprsOf collects the result expressions of every return
// statement belonging to the node's own body (nested literals have
// their own returns and are excluded).
func returnExprsOf(n *CGNode) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(n.Body(), func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, s.Results...)
		}
		return true
	})
	return out
}

// FlowsFromInter is FlowsFrom extended across call boundaries: when the
// backward chain reaches a call with an in-package body, the walk
// continues into that callee's return expressions (and, for named
// results, the definitions of the result variables). Each variable and
// each callee body is visited at most once, keeping the walk linear
// and cycle-safe. Argument expressions at the call site are already in
// the syntactic producing set, so no parameter binding is needed for
// the wrapper patterns this answers ("does this seed come from
// time.Now through a helper?", "is this tensor arena-backed?").
func (p *Pass) FlowsFromInter(fi *FuncInfo, root ast.Expr, pred func(n ast.Node) bool) bool {
	g := p.CallGraph()
	seenVars := map[*types.Var]bool{}
	seenNodes := map[*CGNode]bool{}
	found := false

	var visit func(fi *FuncInfo, n ast.Node)
	enterCall := func(call *ast.CallExpr) {
		for _, e := range g.SiteEdges(call) {
			t := e.Target
			if t == nil || seenNodes[t] {
				continue
			}
			seenNodes[t] = true
			tfi := p.FuncInfoAt(t.Body().Pos())
			if tfi == nil {
				continue
			}
			for _, r := range returnExprsOf(t) {
				visit(tfi, r)
			}
			if t.Fn != nil && t.Decl.Type.Results != nil {
				for _, fld := range t.Decl.Type.Results.List {
					for _, name := range fld.Names {
						obj, ok := p.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						for _, d := range tfi.Defs[obj] {
							if d.RHS != nil {
								visit(tfi, d.RHS)
							}
						}
					}
				}
			}
		}
	}
	visit = func(fi *FuncInfo, n ast.Node) {
		if found || n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			if found || n == nil {
				return false
			}
			if pred(n) {
				found = true
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				enterCall(call)
				if found {
					return false
				}
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, okUse := p.Info.Uses[id].(*types.Var)
			if !okUse || !fi.isLocal(obj) || seenVars[obj] {
				return true
			}
			seenVars[obj] = true
			for _, d := range fi.Defs[obj] {
				if found {
					break
				}
				if d.Stmt != nil && pred(d.Stmt) {
					found = true
					break
				}
				if d.RHS != nil {
					visit(fi, d.RHS)
				}
			}
			return !found
		})
	}
	visit(fi, root)
	return found
}

// parentMap records each node's syntactic parent under root. Checkers
// use it to classify how an occurrence is used (call argument, return
// operand, store target) without threading a path through every walk.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
