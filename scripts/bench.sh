#!/usr/bin/env sh
# bench.sh — kernel benchmark runner for the perf trajectory.
#
# Runs the compute-core benchmarks (GEMM, batched conv, dense training
# step, and the Fig. 4 end-to-end training probe) and rewrites
# BENCH_kernels.json with {ns_op, allocs_op} per benchmark, so each PR
# can diff throughput against the committed numbers of the previous one.
#
# Usage: scripts/bench.sh [benchtime]   (default 1s; pass e.g. 1x for a
# smoke run that only checks the benchmarks still execute)

set -eu

cd "$(dirname "$0")/.."

benchtime="${1:-1s}"
pattern='^(BenchmarkGEMM|BenchmarkConvForward$|BenchmarkConvBackward$|BenchmarkMatMul128$|BenchmarkConv2DForward$|BenchmarkDenseTrainStep$|BenchmarkFig4TrainBinary$)'

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime="$benchtime" . | tee "$tmp"

# Only rewrite the committed snapshot on real timing runs; -benchtime=1x
# numbers are startup noise.
if [ "$benchtime" = "1x" ]; then
    echo "smoke run: BENCH_kernels.json left untouched"
    exit 0
fi

awk '
BEGIN { print "{"; sep = "" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = "null"; allocs = "null"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    printf "%s  \"%s\": {\"ns_op\": %s, \"allocs_op\": %s}", sep, name, ns, allocs
    sep = ",\n"
}
END { print "\n}" }
' "$tmp" > BENCH_kernels.json

echo "wrote BENCH_kernels.json"
