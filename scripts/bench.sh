#!/usr/bin/env sh
# bench.sh — kernel + serving benchmark runner for the perf trajectory.
#
# Runs the compute-core benchmarks (GEMM, batched conv, dense training
# step, and the Fig. 4 end-to-end training probe) and rewrites
# BENCH_kernels.json with {ns_op, allocs_op} per benchmark, so each PR
# can diff throughput against the committed numbers of the previous one.
# Then runs the serving-throughput pair (64 concurrent clients through
# sequential batch-1 PredictOne vs the internal/serve coalescer) and
# rewrites BENCH_serve.json, including the per-prediction rate and the
# coalescing speedup ratio. Then runs the cluster family (replica
# scaling, script-affinity caching, hedging) and rewrites
# BENCH_cluster.json with predictions/sec, cache hit rate, dispatch
# p50/p99, and the 4-replica aggregate speedup. Then runs the quantized
# f32-vs-int8 pairs (uncached serving and uncached 4-replica cluster on
# the conv-dominated FastConfig fixture) and rewrites BENCH_quant.json
# with the int8 speedups, snapshot size fraction, and class disagreement
# rate. Finally runs the prionnvet analysis benchmarks (full gate sweep
# plus the per-layer substrate breakdown: def-use index, call graph,
# lockset engine) and rewrites BENCH_analysis.json.
#
# Usage: scripts/bench.sh [benchtime]   (default 1s; pass e.g. 1x for a
# smoke run that only checks the benchmarks still execute)

set -eu

cd "$(dirname "$0")/.."

benchtime="${1:-1s}"
pattern='^(BenchmarkGEMM|BenchmarkConvForward$|BenchmarkConvBackward$|BenchmarkMatMul128$|BenchmarkConv2DForward$|BenchmarkDenseTrainStep$|BenchmarkFig4TrainBinary$)'

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

serve_tmp="$(mktemp)"
cluster_tmp="$(mktemp)"
quant_tmp="$(mktemp)"
analysis_tmp="$(mktemp)"
pipeline_tmp="$(mktemp)"
trap 'rm -f "$tmp" "$serve_tmp" "$cluster_tmp" "$quant_tmp" "$analysis_tmp" "$pipeline_tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime="$benchtime" . | tee "$tmp"
go test -run '^$' -bench '^BenchmarkServe' -benchmem -benchtime="$benchtime" ./internal/serve/ | tee "$serve_tmp"
go test -run '^$' -bench '^BenchmarkCluster' -benchmem -benchtime="$benchtime" ./internal/cluster/ | tee "$cluster_tmp"
go test -run '^$' -bench '^BenchmarkQuant' -benchmem -benchtime="$benchtime" ./internal/serve/ ./internal/cluster/ | tee "$quant_tmp"
go test -run '^$' -bench '^(BenchmarkPrionnvetRunAll$|BenchmarkAnalysisRepoWide)' -benchmem -benchtime="$benchtime" . | tee "$analysis_tmp"
go test -run '^$' -bench '^BenchmarkPipeline' -benchmem -benchtime="$benchtime" ./internal/pilot/ ./internal/cluster/ | tee "$pipeline_tmp"

# Only rewrite the committed snapshots on real timing runs; -benchtime=1x
# numbers are startup noise.
if [ "$benchtime" = "1x" ]; then
    echo "smoke run: BENCH_kernels.json, BENCH_serve.json, BENCH_cluster.json, BENCH_quant.json, BENCH_analysis.json, and BENCH_pipeline.json left untouched"
    exit 0
fi

awk '
BEGIN { print "{"; sep = "" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = "null"; allocs = "null"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    printf "%s  \"%s\": {\"ns_op\": %s, \"allocs_op\": %s}", sep, name, ns, allocs
    sep = ",\n"
}
END { print "\n}" }
' "$tmp" > BENCH_kernels.json

echo "wrote BENCH_kernels.json"

# BENCH_serve.json additionally derives predictions/sec per benchmark
# and the coalescing speedup (sequential ns_op / coalesced ns_op) — the
# serving layer's headline number.
awk '
BEGIN { print "{"; sep = "" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = "null"; allocs = "null"; batch = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
        if ($i == "batch-size") batch = $(i - 1)
    }
    if (name ~ /Sequential64Clients$/) seq_ns = ns
    if (name ~ /Coalesced64Clients$/) coal_ns = ns
    printf "%s  \"%s\": {\"ns_op\": %s, \"allocs_op\": %s, \"predictions_per_sec\": %.0f", sep, name, ns, allocs, 1e9 / ns
    if (batch != "") printf ", \"mean_batch_size\": %s", batch
    printf "}"
    sep = ",\n"
}
END {
    if (seq_ns != "" && coal_ns != "")
        printf "%s  \"coalescing_speedup\": %.2f", sep, seq_ns / coal_ns
    print "\n}"
}
' "$serve_tmp" > BENCH_serve.json

echo "wrote BENCH_serve.json"

# BENCH_cluster.json: the replicated-cluster family. Each entry derives
# predictions/sec and carries the cluster's own reported metrics (cache
# hit rate, dispatch-latency p50/p99); the trailing key is the headline
# aggregate speedup of the 4-replica affinity+cache configuration over
# the 1-replica cluster baseline. This host is single core, so the
# speedup is carried by the script-affinity prediction cache, not by
# loop parallelism.
awk '
BEGIN { print "{"; sep = "" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = "null"; allocs = "null"; hit = ""; p50 = ""; p99 = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
        if ($i == "hit-rate") hit = $(i - 1)
        if ($i == "p50-ns") p50 = $(i - 1)
        if ($i == "p99-ns") p99 = $(i - 1)
    }
    if (name ~ /Cluster1Replica$/) one_ns = ns
    if (name ~ /Cluster4ReplicasAffinity$/) four_ns = ns
    printf "%s  \"%s\": {\"ns_op\": %s, \"allocs_op\": %s, \"predictions_per_sec\": %.0f", sep, name, ns, allocs, 1e9 / ns
    if (hit != "") printf ", \"cache_hit_rate\": %s", hit
    if (p50 != "") printf ", \"dispatch_p50_ns\": %.0f, \"dispatch_p99_ns\": %.0f", p50, p99
    printf "}"
    sep = ",\n"
}
END {
    if (one_ns != "" && four_ns != "")
        printf "%s  \"aggregate_speedup_4_replicas\": %.2f", sep, one_ns / four_ns
    print "\n}"
}
' "$cluster_tmp" > BENCH_cluster.json

echo "wrote BENCH_cluster.json"

# BENCH_quant.json: the f32-vs-int8 pairs on the conv-dominated fixture.
# Each entry derives predictions/sec; the int8 serving entry carries the
# snapshot sizes and the class disagreement rate vs float32. The derived
# trailing keys are the acceptance numbers: int8_speedup_serve and
# int8_speedup_cluster (f32 ns_op / int8 ns_op, uncached both times) and
# snapshot_fraction (int8 snapshot bytes / float32 checkpoint bytes).
awk '
BEGIN { print "{"; sep = "" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = "null"; allocs = "null"; snap = ""; dis = ""; p50 = ""; p99 = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
        if ($i == "snap-bytes") snap = $(i - 1)
        if ($i == "disagree-rate") dis = $(i - 1)
        if ($i == "p50-ns") p50 = $(i - 1)
        if ($i == "p99-ns") p99 = $(i - 1)
    }
    if (name ~ /QuantServeF32$/) serve_f32 = ns
    if (name ~ /QuantServeInt8$/) serve_int8 = ns
    if (name ~ /QuantCluster4F32NoCache$/) cluster_f32 = ns
    if (name ~ /QuantCluster4Int8NoCache$/) cluster_int8 = ns
    if (name ~ /QuantServeF32$/ && snap != "") f32_bytes = snap
    if (name ~ /QuantServeInt8$/ && snap != "") int8_bytes = snap
    printf "%s  \"%s\": {\"ns_op\": %s, \"allocs_op\": %s, \"predictions_per_sec\": %.0f", sep, name, ns, allocs, 1e9 / ns
    if (snap != "") printf ", \"snapshot_bytes\": %.0f", snap
    if (dis != "") printf ", \"class_disagree_rate\": %s", dis
    if (p50 != "") printf ", \"dispatch_p50_ns\": %.0f, \"dispatch_p99_ns\": %.0f", p50, p99
    printf "}"
    sep = ",\n"
}
END {
    if (serve_f32 != "" && serve_int8 != "")
        printf "%s  \"int8_speedup_serve\": %.2f", sep, serve_f32 / serve_int8
    if (cluster_f32 != "" && cluster_int8 != "")
        printf ",\n  \"int8_speedup_cluster\": %.2f", cluster_f32 / cluster_int8
    if (f32_bytes != "" && int8_bytes != "")
        printf ",\n  \"snapshot_fraction\": %.3f", int8_bytes / f32_bytes
    print "\n}"
}
' "$quant_tmp" > BENCH_quant.json

echo "wrote BENCH_quant.json"

# BENCH_analysis.json: the full gate sweep (every checker over every
# package) plus the per-layer substrate costs. Sub-benchmark names like
# BenchmarkAnalysisRepoWide/lockset keep their slash-separated form.
awk '
BEGIN { print "{"; sep = "" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = "null"; allocs = "null"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    printf "%s  \"%s\": {\"ns_op\": %s, \"allocs_op\": %s}", sep, name, ns, allocs
    sep = ",\n"
}
END { print "\n}" }
' "$analysis_tmp" > BENCH_analysis.json

echo "wrote BENCH_analysis.json"

# BENCH_pipeline.json: the online-learning pipeline. Retrain is one
# full pipeline event (warm-start retrain + shadow eval + deploy
# decision); ShadowEval derives evaluations/sec; the CanaryOff/On pair
# derives the canary stage's request-overhead ratio (on ns_op / off
# ns_op, uncached dispatch both times).
awk '
BEGIN { print "{"; sep = "" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = "null"; allocs = "null"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (name ~ /PipelineRetrain$/) retrain_ns = ns
    if (name ~ /PipelineShadowEval$/) shadow_ns = ns
    if (name ~ /PipelineCanaryOff$/) off_ns = ns
    if (name ~ /PipelineCanaryOn$/) on_ns = ns
    printf "%s  \"%s\": {\"ns_op\": %s, \"allocs_op\": %s}", sep, name, ns, allocs
    sep = ",\n"
}
END {
    if (retrain_ns != "")
        printf "%s  \"retrain_latency_ms\": %.2f", sep, retrain_ns / 1e6
    if (shadow_ns != "")
        printf ",\n  \"shadow_evals_per_sec\": %.2f", 1e9 / shadow_ns
    if (off_ns != "" && on_ns != "")
        printf ",\n  \"canary_request_overhead\": %.3f", on_ns / off_ns
    print "\n}"
}
' "$pipeline_tmp" > BENCH_pipeline.json

echo "wrote BENCH_pipeline.json"
