#!/usr/bin/env sh
# bench.sh — kernel + serving benchmark runner for the perf trajectory.
#
# Runs the compute-core benchmarks (GEMM, batched conv, dense training
# step, and the Fig. 4 end-to-end training probe) and rewrites
# BENCH_kernels.json with {ns_op, allocs_op} per benchmark, so each PR
# can diff throughput against the committed numbers of the previous one.
# Then runs the serving-throughput pair (64 concurrent clients through
# sequential batch-1 PredictOne vs the internal/serve coalescer) and
# rewrites BENCH_serve.json, including the per-prediction rate and the
# coalescing speedup ratio. Then runs the cluster family (replica
# scaling, script-affinity caching, hedging) and rewrites
# BENCH_cluster.json with predictions/sec, cache hit rate, dispatch
# p50/p99, and the 4-replica aggregate speedup. Finally runs the
# prionnvet analysis benchmarks (full gate sweep plus the per-layer
# substrate breakdown: def-use index, call graph, lockset engine) and
# rewrites BENCH_analysis.json.
#
# Usage: scripts/bench.sh [benchtime]   (default 1s; pass e.g. 1x for a
# smoke run that only checks the benchmarks still execute)

set -eu

cd "$(dirname "$0")/.."

benchtime="${1:-1s}"
pattern='^(BenchmarkGEMM|BenchmarkConvForward$|BenchmarkConvBackward$|BenchmarkMatMul128$|BenchmarkConv2DForward$|BenchmarkDenseTrainStep$|BenchmarkFig4TrainBinary$)'

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

serve_tmp="$(mktemp)"
cluster_tmp="$(mktemp)"
analysis_tmp="$(mktemp)"
trap 'rm -f "$tmp" "$serve_tmp" "$cluster_tmp" "$analysis_tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime="$benchtime" . | tee "$tmp"
go test -run '^$' -bench '^BenchmarkServe' -benchmem -benchtime="$benchtime" ./internal/serve/ | tee "$serve_tmp"
go test -run '^$' -bench '^BenchmarkCluster' -benchmem -benchtime="$benchtime" ./internal/cluster/ | tee "$cluster_tmp"
go test -run '^$' -bench '^(BenchmarkPrionnvetRunAll$|BenchmarkAnalysisRepoWide)' -benchmem -benchtime="$benchtime" . | tee "$analysis_tmp"

# Only rewrite the committed snapshots on real timing runs; -benchtime=1x
# numbers are startup noise.
if [ "$benchtime" = "1x" ]; then
    echo "smoke run: BENCH_kernels.json, BENCH_serve.json, BENCH_cluster.json, and BENCH_analysis.json left untouched"
    exit 0
fi

awk '
BEGIN { print "{"; sep = "" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = "null"; allocs = "null"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    printf "%s  \"%s\": {\"ns_op\": %s, \"allocs_op\": %s}", sep, name, ns, allocs
    sep = ",\n"
}
END { print "\n}" }
' "$tmp" > BENCH_kernels.json

echo "wrote BENCH_kernels.json"

# BENCH_serve.json additionally derives predictions/sec per benchmark
# and the coalescing speedup (sequential ns_op / coalesced ns_op) — the
# serving layer's headline number.
awk '
BEGIN { print "{"; sep = "" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = "null"; allocs = "null"; batch = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
        if ($i == "batch-size") batch = $(i - 1)
    }
    if (name ~ /Sequential64Clients$/) seq_ns = ns
    if (name ~ /Coalesced64Clients$/) coal_ns = ns
    printf "%s  \"%s\": {\"ns_op\": %s, \"allocs_op\": %s, \"predictions_per_sec\": %.0f", sep, name, ns, allocs, 1e9 / ns
    if (batch != "") printf ", \"mean_batch_size\": %s", batch
    printf "}"
    sep = ",\n"
}
END {
    if (seq_ns != "" && coal_ns != "")
        printf "%s  \"coalescing_speedup\": %.2f", sep, seq_ns / coal_ns
    print "\n}"
}
' "$serve_tmp" > BENCH_serve.json

echo "wrote BENCH_serve.json"

# BENCH_cluster.json: the replicated-cluster family. Each entry derives
# predictions/sec and carries the cluster's own reported metrics (cache
# hit rate, dispatch-latency p50/p99); the trailing key is the headline
# aggregate speedup of the 4-replica affinity+cache configuration over
# the 1-replica cluster baseline. This host is single core, so the
# speedup is carried by the script-affinity prediction cache, not by
# loop parallelism.
awk '
BEGIN { print "{"; sep = "" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = "null"; allocs = "null"; hit = ""; p50 = ""; p99 = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
        if ($i == "hit-rate") hit = $(i - 1)
        if ($i == "p50-ns") p50 = $(i - 1)
        if ($i == "p99-ns") p99 = $(i - 1)
    }
    if (name ~ /Cluster1Replica$/) one_ns = ns
    if (name ~ /Cluster4ReplicasAffinity$/) four_ns = ns
    printf "%s  \"%s\": {\"ns_op\": %s, \"allocs_op\": %s, \"predictions_per_sec\": %.0f", sep, name, ns, allocs, 1e9 / ns
    if (hit != "") printf ", \"cache_hit_rate\": %s", hit
    if (p50 != "") printf ", \"dispatch_p50_ns\": %.0f, \"dispatch_p99_ns\": %.0f", p50, p99
    printf "}"
    sep = ",\n"
}
END {
    if (one_ns != "" && four_ns != "")
        printf "%s  \"aggregate_speedup_4_replicas\": %.2f", sep, one_ns / four_ns
    print "\n}"
}
' "$cluster_tmp" > BENCH_cluster.json

echo "wrote BENCH_cluster.json"

# BENCH_analysis.json: the full gate sweep (every checker over every
# package) plus the per-layer substrate costs. Sub-benchmark names like
# BenchmarkAnalysisRepoWide/lockset keep their slash-separated form.
awk '
BEGIN { print "{"; sep = "" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = "null"; allocs = "null"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    printf "%s  \"%s\": {\"ns_op\": %s, \"allocs_op\": %s}", sep, name, ns, allocs
    sep = ",\n"
}
END { print "\n}" }
' "$analysis_tmp" > BENCH_analysis.json

echo "wrote BENCH_analysis.json"
