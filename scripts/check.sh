#!/usr/bin/env sh
# check.sh — the full merge gate for the PRIONN reproduction.
#
# Runs, in order:
#   1. gofmt          (formatting drift)
#   2. go vet         (stock correctness checks)
#   3. go build       (everything compiles)
#   4. prionnvet      (repo-specific reproducibility & race-safety checks;
#                      see DESIGN.md "Static analysis & reproducibility
#                      gates" and cmd/prionnvet)
#   5. go test        (tier-1 tests)
#   6. go test -race  (every package under the race detector, including
#                      the ParallelFor/SetMaxWorkers hammer test)
#   7. crash matrix   (fault-injection sweep: every injectable fault
#                      point during a checkpoint save, plus mid-save
#                      crash recovery of the online-retrain loop)
#   8. serve gate     (the serving layer's contract tests — coalesced
#                      == single bitwise, bounded-queue overload,
#                      graceful drain — rerun under the race detector
#                      with concurrent Predict+Swap)
#   9. bench smoke    (one iteration of each kernel and serving
#                      benchmark via scripts/bench.sh 1x; real timings
#                      are recorded separately into BENCH_kernels.json
#                      and BENCH_serve.json)
#  10. go test -fuzz  (short smoke run of each fuzz target: the mapping
#                      crop/pad grid, the feature-directive parser, and
#                      corrupt-checkpoint loading)
#
# Exits nonzero on the first failure. No Makefile on purpose: this file
# is the single committed description of the gate, invoked directly by
# CI (.github/workflows/ci.yml) and by hand before sending a PR.

set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
fmt_out=$(gofmt -l .)
if [ -n "$fmt_out" ]; then
    echo "gofmt needs to be run on:" >&2
    echo "$fmt_out" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== prionnvet ./..."
go run ./cmd/prionnvet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

# Crash matrix: rerun the fault-injection sweep explicitly (it is part
# of the suite above, but a -run filter here keeps it visible as its own
# gate and guards against the tests being skipped or renamed away).
echo "== crash matrix (fault injection)"
go test -count=1 -run 'TestSaveFileCrashMatrix|TestOnlineRetrainCrashRecovery|TestInterruptResumeBitwiseIdentical' ./internal/prionn/

# Serving gate: the coalescer's contract tests, explicitly and under
# the race detector (they also run in the suite above; the -run filter
# keeps serving correctness visible as its own gate and guards against
# the tests being renamed away).
echo "== serving gate (coalescing / overload / drain, -race)"
go test -race -count=1 -run 'TestServeBatchedBitwiseIdenticalToSingle|TestServeOverloadBoundedQueue|TestServeGracefulDrainNoDrops|TestServeConcurrentPredictSwap' ./internal/serve/

# Benchmark smoke: one iteration of each kernel and serving benchmark
# proves the perf-trajectory harness still runs; timings come from
# scripts/bench.sh.
echo "== benchmark smoke (1 iteration)"
sh scripts/bench.sh 1x > /dev/null

# Fuzz smoke runs: a few seconds per target keeps the gate fast while
# still exercising the engine-generated corpus. One package per
# invocation — the fuzzer requires it.
echo "== go test -fuzz (smoke)"
go test -fuzz=FuzzStandardize -fuzztime=3s -run='^$' ./internal/mapping/
go test -fuzz=FuzzMapScript -fuzztime=3s -run='^$' ./internal/mapping/
go test -fuzz=FuzzExtract -fuzztime=3s -run='^$' ./internal/features/
go test -fuzz=FuzzSplitDirective -fuzztime=3s -run='^$' ./internal/features/
go test -fuzz=FuzzLoadPredictor -fuzztime=3s -run='^$' ./internal/prionn/

echo "all checks passed"
