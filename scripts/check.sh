#!/usr/bin/env sh
# check.sh — the full merge gate for the PRIONN reproduction.
#
# Runs, in order:
#   1. gofmt          (formatting drift)
#   2. go vet         (stock correctness checks)
#   3. go build       (everything compiles)
#   4. prionnvet      (repo-specific reproducibility & race-safety checks;
#                      see DESIGN.md "Static analysis & reproducibility
#                      gates" and cmd/prionnvet)
#   5. go test        (tier-1 tests)
#   6. go test -race  (every package under the race detector, including
#                      the ParallelFor/SetMaxWorkers hammer test)
#   7. crash matrix   (fault-injection sweep: every injectable fault
#                      point during a checkpoint save, plus mid-save
#                      crash recovery and checkpoint-restart resume of
#                      the online-retrain loop)
#   8. serve gate     (the serving layer's contract tests — coalesced
#                      == single bitwise, bounded-queue overload,
#                      graceful drain — rerun under the race detector
#                      with concurrent Predict+Swap)
#   9. cluster chaos  (the replicated-cluster robustness matrix under
#                      the race detector: seeded chaos schedules with
#                      latency/error/crash injection, cluster-wide swap
#                      purity, breaker transitions, retry-budget
#                      exhaustion, full degradation, and the serve
#                      drain-race pin)
#  10. quant gate     (the int8 path's accuracy gate and serving parity:
#                      quantized accuracy within 0.5pp of float32 on
#                      held-out jobs, bounded class flip rate, and the
#                      cluster cache's kernel-stamp invalidation)
#  11. pipeline gate  (the online-learning loop under the race
#                      detector: retrain → shadow-eval → canary →
#                      atomic swap end-to-end on a live cluster,
#                      restart-from-every-failpoint resume, shadow
#                      rejection of regressed candidates, all-or-
#                      nothing swap, canary rollback/promotion)
#  12. bench smoke    (one iteration of each kernel, serving, cluster,
#                      quantized f32-vs-int8, and analysis benchmark via
#                      scripts/bench.sh 1x; real timings are recorded
#                      separately into BENCH_kernels.json,
#                      BENCH_serve.json, BENCH_cluster.json,
#                      BENCH_quant.json, BENCH_analysis.json, and
#                      BENCH_pipeline.json)
#  13. go test -fuzz  (short smoke run of each fuzz target: the mapping
#                      crop/pad grid, the feature-directive parser, and
#                      corrupt float and quantized checkpoint loading)
#
# Each step reports its wall-clock seconds on completion, so a slow
# gate points at its own bottleneck. Exits nonzero on the first
# failure. No Makefile on purpose: this file is the single committed
# description of the gate, invoked directly by CI
# (.github/workflows/ci.yml) and by hand before sending a PR.

set -eu

cd "$(dirname "$0")/.."

# step NAME starts a named, timed gate step; step_done prints the
# step's elapsed wall-clock seconds. A step that fails exits (set -e)
# before step_done, so timings only appear for steps that passed.
step() {
    step_name="$1"
    step_t0=$(date +%s)
    echo "== $step_name"
}
step_done() {
    echo "-- $step_name: $(($(date +%s) - step_t0))s"
}

step "gofmt"
fmt_out=$(gofmt -l .)
if [ -n "$fmt_out" ]; then
    echo "gofmt needs to be run on:" >&2
    echo "$fmt_out" >&2
    exit 1
fi
step_done

step "go vet ./..."
go vet ./...
step_done

step "go build ./..."
go build ./...
step_done

step "prionnvet ./..."
go run ./cmd/prionnvet ./...
step_done

step "go test ./..."
go test ./...
step_done

step "go test -race ./..."
go test -race ./...
step_done

# Crash matrix: rerun the fault-injection sweep explicitly (it is part
# of the suite above, but a -run filter here keeps it visible as its own
# gate and guards against the tests being skipped or renamed away).
step "crash matrix (fault injection)"
go test -count=1 -run 'TestSaveFileCrashMatrix|TestOnlineRetrainCrashRecovery|TestOnlineCheckpointRestart|TestInterruptResumeBitwiseIdentical' ./internal/prionn/
step_done

# Serving gate: the coalescer's contract tests, explicitly and under
# the race detector (they also run in the suite above; the -run filter
# keeps serving correctness visible as its own gate and guards against
# the tests being renamed away).
step "serving gate (coalescing / overload / drain, -race)"
go test -race -count=1 -run 'TestServeBatchedBitwiseIdenticalToSingle|TestServeOverloadBoundedQueue|TestServeGracefulDrainNoDrops|TestServeConcurrentPredictSwap' ./internal/serve/
step_done

# Cluster chaos matrix: the multi-replica layer's robustness proof,
# explicitly and under the race detector — seeded chaos (latency,
# errors, kill/restart mid-traffic), cluster-wide snapshot purity,
# breaker state transitions, retry-budget exhaustion, graceful full
# degradation — plus the serve drain-race exactly-once pin.
step "cluster chaos gate (fault injection, -race)"
go test -race -count=1 -run 'TestClusterChaos|TestClusterSwapNeverMixesBatches|TestClusterFullyDegradedFallback|TestClusterRetryBudgetExhaustion|TestClusterBreakerOpensAndRecovers' ./internal/cluster/
go test -race -count=1 -run 'TestServeStopRacesPredictSwapExactlyOnce' ./internal/serve/
step_done

# Quantized-serving gate: the int8 path's acceptance tests, explicitly
# (they also run in the suite above) — the accuracy gate vs float32 on
# held-out jobs, clone determinism of quantized predictions, and the
# cluster cache refusing to serve one kernel's memoized predictions
# after a swap to the other.
step "quantized gate (accuracy / determinism / cache stamps)"
go test -count=1 -run 'TestQuantizedSnapshotAccuracyGate|TestQuantizedSnapshotDeterministicAcrossClones' ./internal/prionn/
go test -count=1 -run 'TestClusterSwapKernelInvalidatesCache' ./internal/cluster/
step_done

# Online-learning pipeline gate: the full retrain → shadow-eval →
# canary → atomic swap loop under the race detector — a live cluster
# with concurrent traffic, restart-from-every-failpoint checkpoint
# resume, shadow rejection of a deliberately regressed candidate,
# all-or-nothing swap atomicity, and canary rollback/promotion.
step "pipeline gate (retrain/shadow/canary/swap, -race)"
go test -race -count=1 -run 'TestPipelineEndToEnd|TestPilotRestartFromEveryFailpoint|TestPilotShadowRejectsRegression|TestEvaluateEdgeWindows' ./internal/pilot/
go test -race -count=1 -run 'TestSwapAllOrNothing|TestCanaryPromotion|TestCanaryAutoRollback|TestCanaryDisagreementRollback' ./internal/cluster/
step_done

# Benchmark smoke: one iteration of each kernel, serving, quantized,
# and analysis benchmark proves the perf-trajectory harness still runs;
# timings come from scripts/bench.sh.
step "benchmark smoke (1 iteration)"
sh scripts/bench.sh 1x > /dev/null
step_done

# Fuzz smoke runs: a few seconds per target keeps the gate fast while
# still exercising the engine-generated corpus. One package per
# invocation — the fuzzer requires it.
step "go test -fuzz (smoke)"
go test -fuzz=FuzzStandardize -fuzztime=3s -run='^$' ./internal/mapping/
go test -fuzz=FuzzMapScript -fuzztime=3s -run='^$' ./internal/mapping/
go test -fuzz=FuzzExtract -fuzztime=3s -run='^$' ./internal/features/
go test -fuzz=FuzzSplitDirective -fuzztime=3s -run='^$' ./internal/features/
go test -fuzz=FuzzLoadPredictor -fuzztime=3s -run='^$' ./internal/prionn/
go test -fuzz=FuzzQuantizedLoad -fuzztime=3s -run='^$' ./internal/prionn/
step_done

echo "all checks passed"
